package core

import (
	"fmt"
	"strings"
	"time"
)

// This file implements SCIDIVE's rule description language, a small
// Snort-style text format so deployments can author rules without
// recompiling:
//
//	# BYE attack (Figure 5)
//	rule bye-attack critical cross stateful {
//	    describe No RTP traffic after a SIP BYE from that agent
//	    seq sip-bye, rtp-after-bye
//	    window 5s
//	}
//
//	rule billing-fraud critical cross stateful {
//	    all sip-bad-format, acct-unmatched, rtp-unmatched-media
//	}
//
// `seq` matches events in order; `all` in any order. Event names are the
// EventType strings (sip-bye, rtp-after-bye, ...). Severities: info,
// warning, critical.
//
// Cross-point rules (fed by the cooperative aggregator, see
// internal/coop) add four constructs:
//
//	rule bye-teardown-split critical cross stateful {
//	    describe BYE at the edge while the gateway still carries media
//	    seq sip-bye@edge, rtp-activity@gateway, rtp-activity@gateway
//	    window 5s
//	}
//
//	rule im-unvouched critical cross stateful {
//	    seq sip-instant-message@ep-alice
//	    absent sip-instant-message@ep-bob
//	    grace 250ms
//	}
//
// "name@point" requires the event to carry that capture point
// (Event.Point). `absent` + `grace` invert the tail: the rule fires only
// if no absent-matching event lands within the grace window of the
// positive pattern completing. `keyby detail` correlates on Event.Detail
// instead of Event.Session (for identities, like an AOR, that span
// Call-IDs). Rules without these constructs format exactly as before, so
// existing rule files and reload carry-forward are untouched.

// eventTypeNames maps DSL event names to types.
var eventTypeNames = func() map[string]EventType {
	all := []EventType{
		EvSIPRegister, EvSIPAuthChallenge, EvSIPRegisterOK, EvSIPInvite,
		EvSIPCallEstablished, EvSIPBye, EvSIPReinvite, EvSIPInstantMessage,
		EvRTPNewFlow, EvAcctStart, EvAcctStop, EvSIPBadFormat,
		EvIMSourceMismatch, EvRTPAfterBye, EvRTPAfterReinvite, EvRTPSeqJump,
		EvRTPBadSource, EvRTPGarbage, EvAuthFlood, EvPasswordGuessing,
		EvAcctUnmatched, EvRTPUnmatchedMedia, EvRTCPSpoofedBye,
		EvOptionsScan, EvProtocolMismatch, EvEvasionSuspect,
		EvRTPActivity,
	}
	m := make(map[string]EventType, len(all))
	for _, t := range all {
		m[t.String()] = t
	}
	return m
}()

// EventTypeByName resolves a DSL event name.
func EventTypeByName(name string) (EventType, bool) {
	t, ok := eventTypeNames[name]
	return t, ok
}

var severityNames = map[string]Severity{
	"info":     SeverityInfo,
	"warning":  SeverityWarning,
	"critical": SeverityCritical,
}

// ParseRules parses a ruleset in the rule description language.
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	var cur *Rule
	seen := make(map[string]bool)
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		errf := func(format string, args ...interface{}) error {
			return fmt.Errorf("rules: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, "rule "):
			if cur != nil {
				return nil, errf("rule %q not closed before new rule", cur.Name)
			}
			header := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "rule ")), "{")
			fields := strings.Fields(header)
			if len(fields) < 2 {
				return nil, errf("rule header wants `rule <name> <severity> [cross] [stateful] {`")
			}
			if !strings.HasSuffix(line, "{") {
				return nil, errf("rule header must end with '{'")
			}
			name := fields[0]
			if seen[name] {
				return nil, errf("duplicate rule %q", name)
			}
			seen[name] = true
			sev, ok := severityNames[fields[1]]
			if !ok {
				return nil, errf("unknown severity %q", fields[1])
			}
			cur = &Rule{Name: name, Severity: sev}
			for _, flag := range fields[2:] {
				switch flag {
				case "cross":
					cur.CrossProtocol = true
				case "stateful":
					cur.Stateful = true
				default:
					return nil, errf("unknown rule flag %q", flag)
				}
			}
		case line == "}":
			if cur == nil {
				return nil, errf("'}' without open rule")
			}
			if len(cur.Steps) == 0 {
				return nil, errf("rule %q has no seq/all clause", cur.Name)
			}
			if len(cur.Absent) > 0 && cur.AbsentGrace <= 0 {
				return nil, errf("rule %q has an absent clause but no grace", cur.Name)
			}
			if cur.AbsentGrace > 0 && len(cur.Absent) == 0 {
				return nil, errf("rule %q has a grace but no absent clause", cur.Name)
			}
			rules = append(rules, *cur)
			cur = nil
		case cur == nil:
			return nil, errf("statement outside a rule: %q", line)
		case strings.HasPrefix(line, "describe "):
			cur.Description = strings.TrimSpace(strings.TrimPrefix(line, "describe "))
		case strings.HasPrefix(line, "seq "), strings.HasPrefix(line, "all "):
			if len(cur.Steps) > 0 {
				return nil, errf("rule %q already has a pattern clause", cur.Name)
			}
			cur.Unordered = strings.HasPrefix(line, "all ")
			steps, err := parseStepList(strings.TrimSpace(line[4:]))
			if err != nil {
				return nil, errf("%v", err)
			}
			cur.Steps = steps
		case strings.HasPrefix(line, "absent "):
			if len(cur.Absent) > 0 {
				return nil, errf("rule %q already has an absent clause", cur.Name)
			}
			steps, err := parseStepList(strings.TrimSpace(strings.TrimPrefix(line, "absent ")))
			if err != nil {
				return nil, errf("%v", err)
			}
			cur.Absent = steps
		case strings.HasPrefix(line, "grace "):
			d, err := time.ParseDuration(strings.TrimSpace(strings.TrimPrefix(line, "grace ")))
			if err != nil {
				return nil, errf("bad grace: %v", err)
			}
			cur.AbsentGrace = d
		case strings.HasPrefix(line, "keyby "):
			key := strings.TrimSpace(strings.TrimPrefix(line, "keyby "))
			if key != KeyByDetail {
				return nil, errf("unknown keyby %q (only %q is supported)", key, KeyByDetail)
			}
			cur.KeyBy = key
		case strings.HasPrefix(line, "window "):
			d, err := time.ParseDuration(strings.TrimSpace(strings.TrimPrefix(line, "window ")))
			if err != nil {
				return nil, errf("bad window: %v", err)
			}
			cur.Window = d
		default:
			return nil, errf("unknown statement %q", line)
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("rules: rule %q not closed at end of input", cur.Name)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("rules: no rules defined")
	}
	return rules, nil
}

// parseStepList parses a comma-separated list of "event[@point]" names.
func parseStepList(list string) ([]Step, error) {
	var steps []Step
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		evName, point, hasPoint := strings.Cut(name, "@")
		t, ok := EventTypeByName(evName)
		if !ok {
			return nil, fmt.Errorf("unknown event type %q", evName)
		}
		if hasPoint && point == "" {
			return nil, fmt.Errorf("empty point in %q", name)
		}
		steps = append(steps, Step{Type: t, Point: point})
	}
	return steps, nil
}

// formatStepList renders steps back into "event[@point]" names.
func formatStepList(steps []Step) string {
	names := make([]string, len(steps))
	for j, st := range steps {
		names[j] = st.Type.String()
		if st.Point != "" {
			names[j] += "@" + st.Point
		}
	}
	return strings.Join(names, ", ")
}

// FormatRules renders rules back into the rule description language
// (predicates, which have no textual form, are omitted).
func FormatRules(rules []Rule) string {
	var b strings.Builder
	for i, r := range rules {
		if i > 0 {
			b.WriteString("\n")
		}
		sev := "info"
		for name, s := range severityNames {
			if s == r.Severity {
				sev = name
			}
		}
		fmt.Fprintf(&b, "rule %s %s", r.Name, sev)
		if r.CrossProtocol {
			b.WriteString(" cross")
		}
		if r.Stateful {
			b.WriteString(" stateful")
		}
		b.WriteString(" {\n")
		if r.Description != "" {
			fmt.Fprintf(&b, "    describe %s\n", r.Description)
		}
		kw := "seq"
		if r.Unordered {
			kw = "all"
		}
		fmt.Fprintf(&b, "    %s %s\n", kw, formatStepList(r.Steps))
		if len(r.Absent) > 0 {
			fmt.Fprintf(&b, "    absent %s\n", formatStepList(r.Absent))
		}
		if r.AbsentGrace > 0 {
			fmt.Fprintf(&b, "    grace %s\n", r.AbsentGrace)
		}
		if r.KeyBy != "" {
			fmt.Fprintf(&b, "    keyby %s\n", r.KeyBy)
		}
		if r.Window > 0 {
			fmt.Fprintf(&b, "    window %s\n", r.Window)
		}
		b.WriteString("}\n")
	}
	return b.String()
}
