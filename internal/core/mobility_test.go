package core_test

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/core"
	"scidive/internal/endpoint"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

// The paper states SCIDIVE "can handle client mobility, an important
// design goal of VoIP protocols such as SIP, and does not flag false
// alarms for such situations". These tests pin that behaviour.

func TestUserMovesToNewHostNoFalseAlarms(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 300}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// Alice's first call from her original location.
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
	tb.Run(2 * time.Second)

	// Alice moves: a new device at a new IP registers her AOR.
	newHost := tb.Net.MustAddHost("alice-laptop", netip.MustParseAddr("10.0.0.7"))
	moved, err := endpoint.New(endpoint.Config{
		Host: newHost, Username: "alice", Password: scenario.Users["alice"],
		Proxy: tb.Proxy.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	moved.Register(nil)
	tb.Run(2 * time.Second)
	if !moved.Registered() {
		t.Fatal("re-registration from the new location failed")
	}
	// The IDS learned the new binding from the wire.
	if got := eng.Generator().Bindings()["alice@10.0.0.10"]; got != netip.MustParseAddr("10.0.0.7") {
		t.Fatalf("IDS binding for alice = %v, want new location", got)
	}

	// A call from the new location: the billing-fraud media check must use
	// the updated binding (no unmatched-media event, no alert).
	var newCall *endpoint.Call
	tb.Sim.Schedule(0, func() {
		moved.Call("bob", func(c *endpoint.Call, err2 error) {
			if err2 != nil {
				t.Errorf("call from new location: %v", err2)
			}
			newCall = c
		})
	})
	tb.Run(3 * time.Second)
	if newCall == nil || !newCall.Established() {
		t.Fatal("call from new location not established")
	}
	tb.Run(5 * time.Second)
	mustNoAlerts(t, eng)
}

func TestIMSourceChangeWithinPeriodAlarmsButNotAfter(t *testing.T) {
	// The fake-IM rule "takes rate of user mobility into account and
	// allows for changes in the IP address": a source change within the
	// stability period is suspicious; after the period it is accepted.
	gen := core.GenConfig{IMPeriod: 10 * time.Second}

	t.Run("within period", func(t *testing.T) {
		tb, eng := deploy(t, scenario.Config{Seed: 301}, core.Config{Gen: gen})
		if err := tb.RegisterAll(); err != nil {
			t.Fatal(err)
		}
		tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "from my desk") })
		tb.Run(2 * time.Second) // well inside the 10s period
		tb.Sim.Schedule(0, func() {
			_ = tb.Attacker.FakeIM(
				netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort),
				sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
				"suspicious change")
		})
		tb.Run(2 * time.Second)
		if got := eng.AlertsFor(core.RuleFakeIM); len(got) != 1 {
			t.Errorf("fake-im alerts = %d, want 1", len(got))
		}
	})

	t.Run("after period", func(t *testing.T) {
		tb, eng := deploy(t, scenario.Config{Seed: 302}, core.Config{Gen: gen})
		if err := tb.RegisterAll(); err != nil {
			t.Fatal(err)
		}
		tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "from my desk") })
		tb.Run(15 * time.Second) // beyond the 10s mobility allowance
		// Bob now messages from a different path (modelled by a direct
		// send from another host claiming bob) — the rule accepts it as
		// mobility.
		tb.Sim.Schedule(0, func() {
			_ = tb.Attacker.FakeIM(
				netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort),
				sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
				"moved to my phone")
		})
		tb.Run(2 * time.Second)
		if got := eng.AlertsFor(core.RuleFakeIM); len(got) != 0 {
			t.Errorf("fake-im alerts = %d after mobility window, want 0", len(got))
		}
	})
}

func TestSmallMTUFragmentedSignalingStillDetected(t *testing.T) {
	// With a tiny MTU every SIP message fragments at the IP layer; the
	// Distiller's reassembly keeps detection working end to end.
	tb, eng := deploy(t, scenario.Config{Seed: 303, MTU: 300}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("sniffer failed to reassemble the fragmented dialog")
	}
	tb.Sim.Schedule(0, func() { _ = tb.Attacker.ForgedBye(d, true) })
	tb.Run(2 * time.Second)
	if got := eng.AlertsFor(core.RuleByeAttack); len(got) != 1 {
		t.Errorf("bye-attack alerts = %d at MTU 300", len(got))
	}
}

func TestSmallMTUNormalCallClean(t *testing.T) {
	tb, eng := deploy(t, scenario.Config{Seed: 304, MTU: 300}, core.Config{})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
	tb.Run(2 * time.Second)
	mustNoAlerts(t, eng)
	// Fragmentation really happened.
	if eng.Stats().Footprints == 0 {
		t.Fatal("no footprints")
	}
}
