package core_test

// Race coverage for ShardedEngine: many goroutines feeding frames while
// others concurrently read Stats, Alerts and TrailCounts. Run with
// `go test -race -short ./internal/core/`.

import (
	"sync"
	"testing"
	"time"

	"scidive/internal/core"
)

func TestShardedEngineRace(t *testing.T) {
	feeders := 4
	readers := 3
	rounds := 8
	if testing.Short() {
		rounds = 3
	}

	var corpus [][]rec
	for _, name := range []string{"benign", "bye", "rtp", "flood"} {
		corpus = append(corpus, scenarioFrames(t, name, 11))
	}
	corpus = append(corpus, synthFrames(1), synthFrames(2))

	eng := core.NewShardedEngine(core.Config{}, 8, core.WithEventLog())
	defer eng.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 3 {
				case 0:
					_ = eng.Stats()
				case 1:
					_ = eng.Alerts()
				default:
					_, _ = eng.TrailCounts()
				}
				time.Sleep(time.Millisecond)
			}
		}(r)
	}

	var feedWG sync.WaitGroup
	for f := 0; f < feeders; f++ {
		feedWG.Add(1)
		go func(f int) {
			defer feedWG.Done()
			for round := 0; round < rounds; round++ {
				frames := corpus[(f+round)%len(corpus)]
				for _, r := range frames {
					eng.HandleFrame(r.at, r.frame)
				}
			}
		}(f)
	}
	feedWG.Wait()
	close(stop)
	wg.Wait()

	eng.Flush()
	st := eng.Stats()
	if st.Frames == 0 || st.Footprints == 0 || st.Events == 0 {
		t.Fatalf("engine processed nothing: %+v", st)
	}
	if len(eng.Alerts()) == 0 {
		t.Fatal("expected alerts from attack scenarios")
	}
}
