package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"scidive/internal/packet"
)

// The distiller fronts untrusted network input; it must never panic and
// must account every frame in exactly one stats bucket.

func TestDistillerNeverPanicsOnRandomBytes(t *testing.T) {
	d := NewDistiller()
	f := func(frame []byte) bool {
		before := d.Stats()
		_ = d.Distill(0, frame)
		after := d.Stats()
		return after.Frames == before.Frames+1
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistillerNeverPanicsOnMutatedValidFrames(t *testing.T) {
	// Mutate every byte position of a valid SIP frame; the distiller must
	// survive all of them.
	frames := frameFor(t, 5060, 5060, sipBytes(t), 0)
	base := frames[0]
	d := NewDistiller()
	for i := range base {
		for _, x := range []byte{0x00, 0xff, 0x80} {
			mut := append([]byte(nil), base...)
			mut[i] ^= x
			_ = d.Distill(time.Duration(i), mut)
		}
	}
}

func TestDistillerStatsAccounting(t *testing.T) {
	d := NewDistiller()
	// One of each category.
	cases := [][]byte{
		frameFor(t, 5060, 5060, sipBytes(t), 0)[0],    // SIP
		frameFor(t, 40666, 40000, []byte{0x01}, 0)[0], // raw on RTP port
		frameFor(t, 1234, 80, []byte("GET /"), 0)[0],  // ignored
		{0x01, 0x02}, // decode error
	}
	for i, frame := range cases {
		d.Distill(time.Duration(i), frame)
	}
	st := d.Stats()
	if st.Frames != 4 {
		t.Errorf("Frames = %d", st.Frames)
	}
	if st.SIP != 1 || st.Raw != 1 || st.Ignored != 1 || st.DecodeError != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineNeverPanicsOnRandomFrames(t *testing.T) {
	eng := NewEngine(Config{})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(200)
		frame := make([]byte, n)
		rng.Read(frame)
		eng.HandleFrame(time.Duration(i)*time.Millisecond, frame)
	}
	// Random bytes rarely form valid Ethernet+IPv4+UDP with a good
	// checksum; the engine must have survived regardless.
	if eng.Stats().Frames != 2000 {
		t.Errorf("Frames = %d", eng.Stats().Frames)
	}
}

func TestEngineSurvivesRandomUDPOnMonitoredPorts(t *testing.T) {
	// Harder fuzz: well-formed Ethernet/IP/UDP carrying random payloads on
	// the monitored ports (SIP, RTP, RTCP, accounting).
	eng := NewEngine(Config{})
	rng := rand.New(rand.NewSource(10))
	ports := []uint16{5060, 40000, 40001, 7009}
	for i := 0; i < 2000; i++ {
		payload := make([]byte, rng.Intn(300))
		rng.Read(payload)
		frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
			SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: dSrcIP, DstIP: dDstIP,
			SrcPort: uint16(1024 + rng.Intn(50000)), DstPort: ports[rng.Intn(len(ports))],
			IPID: uint16(i), Payload: payload,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		eng.HandleFrame(time.Duration(i)*time.Millisecond, frames[0])
	}
	if eng.Stats().Footprints == 0 {
		t.Error("no footprints from monitored-port fuzz")
	}
}
