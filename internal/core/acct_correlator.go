package core

import (
	"fmt"

	"scidive/internal/accounting"
)

// acctCorrelator correlates billing transactions with the SIP state other
// correlators accumulated: a billing START must match a registration, a
// call setup, and the caller's registered location (the Section 3.2
// billing-fraud conditions). It reads the shared session table and the
// registration-binding directory through SessionContext and keeps no
// cross-session state of its own.
type acctCorrelator struct{}

func newAcctCorrelator() *acctCorrelator { return &acctCorrelator{} }

func (c *acctCorrelator) Name() string          { return "acct" }
func (c *acctCorrelator) Protocols() []Protocol { return []Protocol{ProtoAccounting} }

// claimPort claims the accounting feed's port.
func (c *acctCorrelator) claimPort(srcPort, dstPort uint16) (Protocol, bool) {
	if dstPort == accounting.DefaultPort {
		return ProtoAccounting, true
	}
	return ProtoOther, false
}

func (c *acctCorrelator) Process(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
	if v.Proto != ProtoAccounting {
		return
	}
	txn := v.Txn
	switch txn.Kind {
	case accounting.TxnStart:
		st := ctx.OpenSession(txn.CallID)
		st.acctStart = true
		*evs = append(*evs, Event{At: v.At, Type: EvAcctStart, Session: txn.CallID,
			Detail: fmt.Sprintf("%s -> %s from %v", txn.From, txn.To, txn.FromIP), Footprint: ctx.Observation()})
		// The Section 3.2 check: the billed caller must have initiated the
		// call from their registered location.
		binding, registered := ctx.Binding(txn.From)
		switch {
		case !registered, !st.established && st.callerAOR == "":
			c.unmatchedAcct(v, st, ctx, evs,
				fmt.Sprintf("billing START for %s with no matching registration/call setup", txn.From))
		case txn.FromIP != binding:
			c.unmatchedAcct(v, st, ctx, evs,
				fmt.Sprintf("billing START for %s from %v but %s is registered at %v",
					txn.From, txn.FromIP, txn.From, binding))
		case st.inviteSrcIP.IsValid() && st.inviteSrcIP != binding:
			c.unmatchedAcct(v, st, ctx, evs,
				fmt.Sprintf("INVITE for billed call came from %v, not %s's registered %v",
					st.inviteSrcIP, txn.From, binding))
		}
	case accounting.TxnStop:
		*evs = append(*evs, Event{At: v.At, Type: EvAcctStop, Session: txn.CallID, Footprint: ctx.Observation()})
	}
}

func (c *acctCorrelator) unmatchedAcct(v *FrameView, st *sessionState, ctx *SessionContext, evs *[]Event, detail string) {
	if st.unmatchedOnce {
		return
	}
	st.unmatchedOnce = true
	*evs = append(*evs, Event{At: v.At, Type: EvAcctUnmatched, Session: st.callID, Detail: detail, Footprint: ctx.Observation()})
}
