package core

import (
	"fmt"

	"scidive/internal/accounting"
)

// acctCorrelator correlates billing transactions with the SIP state other
// correlators accumulated: a billing START must match a registration, a
// call setup, and the caller's registered location (the Section 3.2
// billing-fraud conditions). It reads the shared session table and the
// registration-binding directory through SessionContext and keeps no
// cross-session state of its own.
type acctCorrelator struct{}

func newAcctCorrelator() *acctCorrelator { return &acctCorrelator{} }

func (c *acctCorrelator) Name() string          { return "acct" }
func (c *acctCorrelator) Protocols() []Protocol { return []Protocol{ProtoAccounting} }

// claimPort claims the accounting feed's port.
func (c *acctCorrelator) claimPort(srcPort, dstPort uint16) (Protocol, bool) {
	if dstPort == accounting.DefaultPort {
		return ProtoAccounting, true
	}
	return ProtoOther, false
}

func (c *acctCorrelator) Process(f Footprint, h RouteHints, ctx *SessionContext) []Event {
	fp, ok := f.(*AcctFootprint)
	if !ok {
		return nil
	}
	var events []Event
	txn := fp.Txn
	switch txn.Kind {
	case accounting.TxnStart:
		st := ctx.OpenSession(txn.CallID)
		st.acctStart = true
		events = append(events, Event{At: fp.At, Type: EvAcctStart, Session: txn.CallID,
			Detail: fmt.Sprintf("%s -> %s from %v", txn.From, txn.To, txn.FromIP), Footprint: fp})
		// The Section 3.2 check: the billed caller must have initiated the
		// call from their registered location.
		binding, registered := ctx.Binding(txn.From)
		switch {
		case !registered, !st.established && st.callerAOR == "":
			events = append(events, c.unmatchedAcct(fp, st,
				fmt.Sprintf("billing START for %s with no matching registration/call setup", txn.From))...)
		case txn.FromIP != binding:
			events = append(events, c.unmatchedAcct(fp, st,
				fmt.Sprintf("billing START for %s from %v but %s is registered at %v",
					txn.From, txn.FromIP, txn.From, binding))...)
		case st.inviteSrcIP.IsValid() && st.inviteSrcIP != binding:
			events = append(events, c.unmatchedAcct(fp, st,
				fmt.Sprintf("INVITE for billed call came from %v, not %s's registered %v",
					st.inviteSrcIP, txn.From, binding))...)
		}
	case accounting.TxnStop:
		events = append(events, Event{At: fp.At, Type: EvAcctStop, Session: txn.CallID, Footprint: fp})
	}
	return events
}

func (c *acctCorrelator) unmatchedAcct(fp *AcctFootprint, st *sessionState, detail string) []Event {
	if st.unmatchedOnce {
		return nil
	}
	st.unmatchedOnce = true
	return []Event{{At: fp.At, Type: EvAcctUnmatched, Session: st.callID, Detail: detail, Footprint: fp}}
}
