package core

import (
	"fmt"
	"net/netip"
	"time"
)

// SessionContext is the single cross-protocol state surface shared by
// every correlator: the session/dialog table (sessionIndex), the trail
// store, the registration-binding directory, and the per-frame scratch
// the dispatcher prepares (session key, memoized applySIP outcome). What
// used to be implicit struct-field coupling inside the monolithic Event
// Generator is now explicit: a correlator that needs state another
// protocol produced goes through a named SessionContext method (e.g.
// CheckPendingRTCPBye, Binding), so the cross-protocol edges are visible
// in the type system.
type SessionContext struct {
	cfg    GenConfig
	trails *TrailStore
	idx    *sessionIndex
	limits Limits

	// Registration bindings (AOR -> contact IP) are context state, not
	// correlator state: the SIP correlator writes them, the accounting
	// correlator reads them (billing fraud's registered-location check),
	// and the sharded router replicates them to every shard.
	bindings map[string]netip.Addr
	// bindingAge orders bindings for LRU eviction without changing the
	// shape of the bindings map itself; entries missing from it rank
	// oldest. bindingClock advances on every set/refresh.
	bindingAge   map[string]int
	bindingClock int

	evictedSessions int
	evictedBindings int

	// observers are the registered establishObserver correlators, notified
	// by beginFrame the moment applySIP reports a session established.
	observers []establishObserver

	// Per-frame scratch, valid from beginFrame to endFrame. view is the
	// frame in flight; boxed is its Footprint materialization, filled
	// lazily by Observation (or up front by the compat wrappers, which
	// already hold a boxed footprint).
	view       *FrameView
	boxed      Footprint
	session    string
	touchOnEnd bool
	sipSt      *sessionState
	sipOut     sipOutcome
}

// newSessionContext builds the shared context for one pipeline instance.
func newSessionContext(cfg GenConfig, trails *TrailStore) *SessionContext {
	return &SessionContext{
		cfg:        cfg,
		trails:     trails,
		idx:        newSessionIndex(false),
		bindings:   make(map[string]netip.Addr),
		bindingAge: make(map[string]int),
	}
}

// beginFrame files the frame view into its trail and prepares the
// per-frame scratch: the session key every correlator sees, and — for SIP
// — the one-and-only applySIP application for this sighting, so dialog
// state moves exactly once no matter how many correlators consume the
// outcome. boxed may be nil (the hot path); Observation boxes lazily when
// an event needs the footprint attached. It reports whether the view's
// protocol is known.
func (ctx *SessionContext) beginFrame(v *FrameView, boxed Footprint, h RouteHints) bool {
	ctx.sipSt, ctx.sipOut = nil, sipOutcome{}
	ctx.touchOnEnd = false
	ctx.view, ctx.boxed = v, boxed
	switch v.Proto {
	case ProtoSIP:
		ctx.session = v.Msg.CallID()
		ctx.trails.Get(ctx.session, ProtoSIP).AppendView(v)
		ctx.sipSt, ctx.sipOut = ctx.idx.applySIP(v.Msg, v.At, v.Src)
		if ctx.sipOut.established {
			for _, o := range ctx.observers {
				o.onEstablished(ctx.sipSt)
			}
		}
		ctx.touchOnEnd = true
	case ProtoRTP:
		session := h.Session
		if session == "" {
			session = ctx.idx.sessionKeyView(v)
		}
		ctx.session = session
		ctx.trails.Get(session, ProtoRTP).AppendView(v)
		ctx.touchOnEnd = true
	case ProtoRTCP:
		session := h.Session
		if session == "" {
			session = ctx.idx.sessionKeyView(v)
		}
		ctx.session = session
		ctx.trails.Get(session, ProtoRTCP).AppendView(v)
		ctx.touchOnEnd = true
	case ProtoAccounting:
		ctx.session = v.Txn.CallID
		ctx.trails.Get(ctx.session, ProtoAccounting).AppendView(v)
	case ProtoOther:
		ctx.session = ctx.idx.endpointKey('w', "raw:", v.Dst)
		ctx.trails.Get(ctx.session, ProtoOther).AppendView(v)
	default:
		return false
	}
	return true
}

// endFrame records session activity for expiry bookkeeping (SIP, RTP and
// RTCP frames touch their session; accounting and raw traffic do not,
// preserving the generator's historic expiry behavior).
func (ctx *SessionContext) endFrame(at time.Duration) {
	if ctx.touchOnEnd {
		ctx.idx.touch(ctx.session, at)
	}
	ctx.view, ctx.boxed = nil, nil
}

// Config returns the normalized generator configuration.
func (ctx *SessionContext) Config() GenConfig { return ctx.cfg }

// Budget returns the installed state budget.
func (ctx *SessionContext) Budget() Limits { return ctx.limits }

// Session returns the session (trail) key of the footprint being
// processed.
func (ctx *SessionContext) Session() string { return ctx.session }

// Observation returns the boxed Footprint of the frame in flight, for
// attaching to events. Boxing is lazy and memoized per frame: frames that
// complete no event never pay a Footprint allocation, and multiple events
// from one frame share one boxed value (as the boxed pipeline always
// did).
func (ctx *SessionContext) Observation() Footprint {
	if ctx.boxed == nil && ctx.view != nil {
		ctx.boxed = ctx.view.box()
	}
	return ctx.boxed
}

// SIP returns the memoized dialog state and transition outcome of the SIP
// footprint being processed. Only meaningful while a SIPFootprint is in
// flight (st is nil otherwise).
func (ctx *SessionContext) SIP() (st *sessionState, out sipOutcome) {
	return ctx.sipSt, ctx.sipOut
}

// LookupSession returns the dialog state for a session key without
// creating it.
func (ctx *SessionContext) LookupSession(id string) (*sessionState, bool) {
	st, ok := ctx.idx.sessions[id]
	return st, ok
}

// OpenSession returns the dialog state for a session key, creating it
// (subject to the MaxSessions budget) if needed.
func (ctx *SessionContext) OpenSession(id string) *sessionState {
	return ctx.idx.core(id)
}

// MediaDstSession maps a destination media endpoint to the session that
// negotiated it ("" when none has).
func (ctx *SessionContext) MediaDstSession(dst netip.AddrPort) string {
	return ctx.idx.mediaDstSession(dst)
}

// Binding returns the registered contact IP for an AOR.
func (ctx *SessionContext) Binding(aor string) (netip.Addr, bool) {
	ip, ok := ctx.bindings[aor]
	return ip, ok
}

// SetBinding installs or refreshes a registration binding, evicting the
// least-recently refreshed one (ties: smaller AOR; entries predating age
// tracking rank oldest) when MaxBindings would be exceeded.
func (ctx *SessionContext) SetBinding(aor string, ip netip.Addr) {
	if _, exists := ctx.bindings[aor]; !exists &&
		ctx.limits.MaxBindings > 0 && len(ctx.bindings) >= ctx.limits.MaxBindings {
		var vk string
		found := false
		for k := range ctx.bindings {
			if !found || ctx.bindingAge[k] < ctx.bindingAge[vk] ||
				(ctx.bindingAge[k] == ctx.bindingAge[vk] && k < vk) {
				vk, found = k, true
			}
		}
		if found {
			delete(ctx.bindings, vk)
			delete(ctx.bindingAge, vk)
			ctx.evictedBindings++
		}
	}
	ctx.bindings[aor] = ip
	ctx.bindingClock++
	ctx.bindingAge[aor] = ctx.bindingClock
}

// CheckPendingRTCPBye fires the spoofed-RTCP-BYE event once the grace
// period elapses without a SIP BYE appearing. This is the explicit
// three-protocol coupling point: the RTCP correlator arms the pending
// state, SIP dialog transitions can clear it, and whichever media or
// control packet next observes the session drives the verdict — so both
// the RTP and RTCP correlators call this on every sighting of a known
// session.
func (ctx *SessionContext) CheckPendingRTCPBye(st *sessionState, now time.Duration, evs *[]Event) {
	if !st.rtcpByePending || st.rtcpByeFired {
		return
	}
	if st.byeSeen {
		st.rtcpByePending = false // legitimate teardown caught up
		return
	}
	if now-st.rtcpByeAt <= ctx.cfg.ReinviteGrace {
		return
	}
	st.rtcpByePending = false
	st.rtcpByeFired = true
	*evs = append(*evs, Event{
		At: now, Type: EvRTCPSpoofedBye, Session: st.callID,
		Detail: fmt.Sprintf("RTCP BYE at %v with no SIP BYE after %v; media control and call signaling disagree",
			st.rtcpByeAt, ctx.cfg.ReinviteGrace),
		Footprint: ctx.Observation(),
	})
}
