package core

import (
	"testing"
	"time"
)

// digestFrameFor wraps an encoded digest in Ethernet/IP/UDP framing
// bound for the digest port.
func digestFrameFor(t *testing.T, srcPort, dstPort uint16) []byte {
	t.Helper()
	d := &Digest{Point: "edge", Seq: 1, Events: []Event{
		{At: time.Second, Type: EvSIPBye, Session: "call-1", Detail: "alice hangs up"},
	}}
	frames := frameFor(t, srcPort, dstPort, EncodeDigest(d), 1500)
	if len(frames) != 1 {
		t.Fatalf("digest did not fit one frame (%d)", len(frames))
	}
	return frames[0]
}

// TestDigestPortClaimedAsControl pins satellite behavior of the
// cooperative layer: a monitored link carrying the IDS's own digest
// traffic must raise nothing. The control correlator claims the digest
// port, so the distiller files the frames as ignored control traffic —
// never as an RTP/SIP protocol mismatch or an evasion suspect.
func TestDigestPortClaimedAsControl(t *testing.T) {
	for _, tc := range []struct {
		name             string
		srcPort, dstPort uint16
	}{
		{"digest to aggregator", 7100, 7100},
		{"digest from ephemeral source", 40123, 7100},
		{"ack back to probe", 7100, 40123},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := NewEngine(Config{}, WithEventLog())
			eng.HandleFrame(time.Second, digestFrameFor(t, tc.srcPort, tc.dstPort))
			ds := eng.DistillerStats()
			if ds.Ignored != 1 {
				t.Errorf("digest frame not filed as ignored control traffic: %+v", ds)
			}
			if ds.Mismatched != 0 || ds.RTP != 0 || ds.SIP != 0 || ds.Raw != 0 {
				t.Errorf("digest frame leaked into a protocol classification: %+v", ds)
			}
			if evs := eng.Events(); len(evs) != 0 {
				t.Errorf("digest frame generated events: %v", evs)
			}
			for _, a := range eng.Alerts() {
				t.Errorf("digest frame raised alert: %v", a)
			}
		})
	}
}

// TestDigestPortConfigOverride moves the claim with GenConfig.DigestPort:
// the configured port is control, and the default port is no longer
// special (the digest payload then rides through the content classifier
// like any unknown binary traffic — whatever it classifies as, the claim
// must follow the config, not the constant).
func TestDigestPortConfigOverride(t *testing.T) {
	eng := NewEngine(Config{Gen: GenConfig{DigestPort: 7200}}, WithEventLog())
	eng.HandleFrame(time.Second, digestFrameFor(t, 40123, 7200))
	if ds := eng.DistillerStats(); ds.Ignored != 1 {
		t.Errorf("configured digest port 7200 not claimed as control: %+v", ds)
	}

}

// TestDigestOffClaimedPortFilesAsRaw is the negative control for the
// port claim: the same digest bytes sent at a SIP-claimed port fail the
// SIP parser (and confirm as no other protocol), so they are recorded as
// undecodable raw traffic on that port — the classification noise the
// control claim exists to keep digests out of.
func TestDigestOffClaimedPortFilesAsRaw(t *testing.T) {
	eng := NewEngine(Config{}, WithEventLog())
	eng.HandleFrame(time.Second, digestFrameFor(t, 40123, 5060))
	ds := eng.DistillerStats()
	if ds.Raw != 1 || ds.Ignored != 0 {
		t.Errorf("digest bytes on the SIP port should file as raw, got %+v", ds)
	}
}
