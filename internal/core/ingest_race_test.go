package core_test

// Race coverage for the partitioned ingest handoff: many goroutines
// feeding the ingest tier while others drain it (Flush/Alerts/
// TrailCounts), shed under pressure, and close it mid-stream. Run with
// `go test -race -short ./internal/core/`.

import (
	"sync"
	"testing"
	"time"

	"scidive/internal/core"
)

// TestIngestHandoffRace hammers feed vs drain vs read on an engine with
// 4 ingest lanes and 8 shards.
func TestIngestHandoffRace(t *testing.T) {
	feeders := 4
	readers := 4
	rounds := 8
	if testing.Short() {
		rounds = 3
	}

	var corpus [][]rec
	for _, name := range []string{"benign", "bye", "rtp", "flood"} {
		corpus = append(corpus, scenarioFrames(t, name, 11))
	}
	corpus = append(corpus, synthFrames(1), synthFrames(2))

	eng := core.NewShardedEngine(core.Config{IngestRouters: 4}, 8, core.WithEventLog())
	defer eng.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r % 4 {
				case 0:
					_ = eng.Stats()
				case 1:
					_ = eng.Alerts()
				case 2:
					_, _ = eng.TrailCounts()
				default:
					// Flush races the feeders' handoff directly: drain
					// markers interleave with data batches in the lanes.
					eng.Flush()
					_ = eng.IngestHealth()
				}
				time.Sleep(time.Millisecond)
			}
		}(r)
	}

	var feedWG sync.WaitGroup
	for f := 0; f < feeders; f++ {
		feedWG.Add(1)
		go func(f int) {
			defer feedWG.Done()
			for round := 0; round < rounds; round++ {
				frames := corpus[(f+round)%len(corpus)]
				for _, r := range frames {
					eng.HandleFrame(r.at, r.frame)
				}
			}
		}(f)
	}
	feedWG.Wait()
	close(stop)
	wg.Wait()

	eng.Flush()
	st := eng.Stats()
	if st.Frames == 0 || st.Footprints == 0 || st.Events == 0 {
		t.Fatalf("engine processed nothing: %+v", st)
	}
	if len(eng.Alerts()) == 0 {
		t.Fatal("expected alerts from attack scenarios")
	}
	for _, h := range eng.IngestHealth() {
		if h.FramesFed != h.FramesSequenced {
			t.Errorf("lane %d: fed %d != sequenced %d after flush", h.Ingester, h.FramesFed, h.FramesSequenced)
		}
	}
}

// slowShard stalls every frame on shard 0, keeping its queue saturated.
type slowShard struct{ d time.Duration }

func (s slowShard) At(shard int, frame uint64) core.Fault {
	if shard == 0 {
		return core.Fault{Stall: s.d}
	}
	return core.Fault{}
}

// TestIngestShedRace layers load shedding on top of the parallel
// handoff: a stalling fault injector keeps shard 0 saturated so the
// sequencer's bounded-wait shed path runs while the ingest lanes are
// racing, and every dropped frame must still be accounted.
func TestIngestShedRace(t *testing.T) {
	frames := scenarioFrames(t, "flood", 11)
	eng := core.NewShardedEngine(core.Config{
		IngestRouters: 4,
		Limits:        core.Limits{ShedAfter: 20 * time.Microsecond},
	}, 2, core.WithEventLog(), core.WithFaultInjector(slowShard{d: time.Millisecond}))
	defer eng.Close()

	var feedWG sync.WaitGroup
	for f := 0; f < 4; f++ {
		feedWG.Add(1)
		go func() {
			defer feedWG.Done()
			for round := 0; round < 3; round++ {
				for _, r := range frames {
					eng.HandleFrame(r.at, r.frame)
				}
			}
		}()
	}
	feedWG.Wait()
	eng.Flush()
	st := eng.Stats()
	var processed, shed uint64
	for _, sh := range eng.ShardHealth() {
		if sh.FramesRouted != sh.FramesProcessed+sh.FramesShed {
			t.Errorf("shard %d: routed %d != processed %d + shed %d",
				sh.Shard, sh.FramesRouted, sh.FramesProcessed, sh.FramesShed)
		}
		processed += sh.FramesProcessed
		shed += sh.FramesShed
	}
	if shed == 0 {
		t.Skip("no shed under this scheduling; ledger still verified")
	}
	if st.FramesShed != int(shed) {
		t.Errorf("stats FramesShed %d != shard ledger %d", st.FramesShed, shed)
	}
}

// TestIngestCloseRace closes the engine while feeders are mid-stream:
// no panic, no lost accounting — every fed frame is either sequenced or
// counted as arriving after close.
func TestIngestCloseRace(t *testing.T) {
	frames := scenarioFrames(t, "bye", 11)
	for round := 0; round < 10; round++ {
		eng := core.NewShardedEngine(core.Config{IngestRouters: 2}, 4, core.WithEventLog())
		var feedWG sync.WaitGroup
		for f := 0; f < 3; f++ {
			feedWG.Add(1)
			go func() {
				defer feedWG.Done()
				for _, r := range frames {
					eng.HandleFrame(r.at, r.frame)
				}
			}()
		}
		eng.Close()
		feedWG.Wait()
		st := eng.Stats()
		if st.Frames+st.FramesAfterClose != 3*len(frames) {
			t.Fatalf("round %d: %d sequenced + %d after close != %d fed",
				round, st.Frames, st.FramesAfterClose, 3*len(frames))
		}
	}
}
