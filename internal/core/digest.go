package core

import (
	"encoding/binary"
	"fmt"
	"time"
)

// This file is the cooperative layer's event-export surface: the compact
// versioned wire encoding a probe ships to its aggregator (Digest), the
// per-engine selector that accumulates exportable events under a Limits
// budget (Exporter), and the standalone rule-engine checkpoint codec the
// aggregator persists its cross-point matching state through. Everything
// reuses the snapshot codec's sorted-key big-endian primitives
// (snapshot.go), so digests and aggregator checkpoints inherit the same
// determinism and hostile-input guarantees as engine checkpoints.

// DefaultDigestPort is the UDP port probes send digests to (and
// aggregators ack from) unless Config overrides it. The control
// correlator claims it so monitored links carrying IDS control traffic
// raise nothing (see control_correlator.go).
const DefaultDigestPort = 7100

const (
	// digestMagic / digestAckMagic tag the two control-plane frame kinds
	// sharing the digest port: probe→aggregator digests and
	// aggregator→probe acknowledgements.
	digestMagic    = "SCDG"
	digestAckMagic = "SCGA"
	// digestVersion is the digest wire format version; decoders reject
	// anything else (probes and aggregators upgrade together).
	digestVersion = 1
	// aggSnapMagic tags a standalone rule-engine checkpoint
	// (SnapshotRuleEngine), the aggregator's persistence format.
	aggSnapMagic   = "SCDR"
	aggSnapVersion = 1
)

// Digest is one probe→aggregator shipment: a batch of selected events
// stamped with the probe's observation-point name and a per-probe
// sequence number. Sequence numbers start at 1 and increment per digest;
// the aggregator detects loss (and raises a self-alert) from gaps.
type Digest struct {
	// Point names the observation point that produced the events (e.g.
	// "edge", "gateway"). The decoder stamps it onto every carried event
	// whose Point is empty, so cross-point rules can qualify steps by
	// vantage.
	Point string
	// Seq is the probe's digest sequence number (first digest = 1).
	Seq uint64
	// Dropped is the probe's cumulative count of events discarded under
	// the Limits.MaxDigestEvents budget, so the aggregator can tell a
	// quiet probe from a shedding one.
	Dropped uint64
	// Events are the exported events, in engine emission order.
	Events []Event
}

// EncodeDigest serializes a digest: magic, version, payload, and a
// trailing FNV-64a checksum over everything before it.
func EncodeDigest(d *Digest) []byte {
	w := &snapWriter{}
	w.buf = append(w.buf, digestMagic...)
	w.u8(digestVersion)
	w.str(d.Point)
	w.u64(d.Seq)
	w.u64(d.Dropped)
	writeEvents(w, d.Events)
	w.u64(fnv64(w.buf))
	return w.buf
}

// DecodeDigest parses and validates a digest frame. Decoding is
// all-or-nothing: any truncation, checksum mismatch, version skew or
// hostile length prefix yields an error and no partial digest. Carried
// events with an empty Point are stamped with the digest's Point.
func DecodeDigest(data []byte) (*Digest, error) {
	body, err := openControlFrame(data, digestMagic, digestVersion, "digest")
	if err != nil {
		return nil, err
	}
	r := &snapReader{buf: body}
	d := &Digest{Point: r.strv(), Seq: r.u64(), Dropped: r.u64()}
	d.Events = readEvents(r)
	if r.err != nil {
		return nil, fmt.Errorf("core: digest corrupt: %w", r.err)
	}
	if !r.done() {
		return nil, fmt.Errorf("core: digest corrupt (%d trailing bytes)", r.remaining())
	}
	if d.Seq == 0 {
		return nil, fmt.Errorf("core: digest corrupt (sequence number 0; sequences start at 1)")
	}
	for i := range d.Events {
		if d.Events[i].Point == "" {
			d.Events[i].Point = d.Point
		}
	}
	return d, nil
}

// EncodeDigestAck serializes an aggregator→probe acknowledgement for
// every digest from point up to and including seq.
func EncodeDigestAck(point string, seq uint64) []byte {
	w := &snapWriter{}
	w.buf = append(w.buf, digestAckMagic...)
	w.u8(digestVersion)
	w.str(point)
	w.u64(seq)
	w.u64(fnv64(w.buf))
	return w.buf
}

// DecodeDigestAck parses an acknowledgement frame.
func DecodeDigestAck(data []byte) (point string, seq uint64, err error) {
	body, err := openControlFrame(data, digestAckMagic, digestVersion, "digest ack")
	if err != nil {
		return "", 0, err
	}
	r := &snapReader{buf: body}
	point = r.strv()
	seq = r.u64()
	if r.err != nil {
		return "", 0, fmt.Errorf("core: digest ack corrupt: %w", r.err)
	}
	if !r.done() {
		return "", 0, fmt.Errorf("core: digest ack corrupt (%d trailing bytes)", r.remaining())
	}
	return point, seq, nil
}

// IsDigest reports whether a payload starts with the digest magic (used
// to mux digests and acks arriving on the shared control port).
func IsDigest(data []byte) bool {
	return len(data) >= len(digestMagic) && string(data[:len(digestMagic)]) == digestMagic
}

// IsDigestAck reports whether a payload starts with the ack magic.
func IsDigestAck(data []byte) bool {
	return len(data) >= len(digestAckMagic) && string(data[:len(digestAckMagic)]) == digestAckMagic
}

// openControlFrame validates a control frame's envelope — magic, version
// byte, trailing checksum — and returns the payload between version and
// checksum.
func openControlFrame(data []byte, magic string, version uint8, what string) ([]byte, error) {
	envelope := len(magic) + 1 + 8
	if len(data) < envelope {
		return nil, fmt.Errorf("core: %s truncated (%d bytes; envelope needs %d)", what, len(data), envelope)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("core: not a %s frame (bad magic)", what)
	}
	sumAt := len(data) - 8
	want := binary.BigEndian.Uint64(data[sumAt:])
	if got := fnv64(data[:sumAt]); got != want {
		return nil, fmt.Errorf("core: %s corrupt (checksum mismatch)", what)
	}
	if v := data[len(magic)]; v != version {
		return nil, fmt.Errorf("core: %s is format v%d; this build reads only v%d", what, v, version)
	}
	return data[len(magic)+1 : sumAt], nil
}

// Exporter selects an engine's events for cooperative export. It attaches
// to an Engine or ShardedEngine through the OnEvent hook (or is fed
// directly via Observe), keeps the selected events in a bounded pending
// queue, and packages them into sequence-numbered digests on Flush. The
// probe layer (internal/coop) owns transport: retry, acknowledgement and
// gap detection happen above this type.
//
// Exporter is not safe for concurrent use; the engine's OnEvent hook
// already serializes delivery (per shard in sharded mode — attach one
// exporter per probe engine, not per shard).
type Exporter struct {
	types   map[EventType]bool
	where   func(Event) bool
	limit   int
	pending []Event
	seq     uint64
	dropped uint64
}

// NewExporter builds an exporter that selects the given event types
// (empty = every type). Limits.MaxDigestEvents bounds the pending queue:
// when full, the oldest pending event is dropped and counted.
func NewExporter(l Limits, types ...EventType) *Exporter {
	e := &Exporter{limit: l.MaxDigestEvents}
	if len(types) > 0 {
		e.types = make(map[EventType]bool, len(types))
		for _, t := range types {
			e.types[t] = true
		}
	}
	return e
}

// SetFilter installs an additional per-event predicate; events failing it
// are not exported. Used by probes to export only locally-originated
// evidence (e.g. transmit-provenance events), so a probe never vouches
// for traffic it merely overheard.
func (e *Exporter) SetFilter(fn func(Event) bool) { e.where = fn }

// Observe offers one event to the exporter (the OnEvent hook signature).
func (e *Exporter) Observe(ev Event) {
	if e.types != nil && !e.types[ev.Type] {
		return
	}
	if e.where != nil && !e.where(ev) {
		return
	}
	if e.limit > 0 && len(e.pending) >= e.limit {
		copy(e.pending, e.pending[1:])
		e.pending = e.pending[:len(e.pending)-1]
		e.dropped++
	}
	e.pending = append(e.pending, ev)
}

// Pending reports how many selected events await the next Flush.
func (e *Exporter) Pending() int { return len(e.pending) }

// Dropped reports how many selected events were discarded under the
// MaxDigestEvents budget since construction.
func (e *Exporter) Dropped() uint64 { return e.dropped }

// Seq reports the sequence number of the most recently flushed digest
// (0 = none yet).
func (e *Exporter) Seq() uint64 { return e.seq }

// Flush drains the pending events into a new digest stamped with the
// probe's point name and the next sequence number. Returns nil when
// nothing is pending (sequence numbers are never spent on empty
// digests).
func (e *Exporter) Flush(point string) *Digest {
	if len(e.pending) == 0 {
		return nil
	}
	e.seq++
	d := &Digest{
		Point:   point,
		Seq:     e.seq,
		Dropped: e.dropped,
		Events:  e.pending,
	}
	e.pending = nil
	return d
}

// --- aggregator checkpoint ---

// SnapshotRuleEngine serializes a standalone RuleEngine — the cooperative
// aggregator's cross-point matcher — through the same deterministic codec
// engine checkpoints use, fingerprinted against its ruleset so a
// checkpoint can only restore into an aggregator running the rules that
// wrote it.
func SnapshotRuleEngine(re *RuleEngine) []byte {
	w := &snapWriter{}
	w.buf = append(w.buf, aggSnapMagic...)
	w.u8(aggSnapVersion)
	w.u64(rulesFingerprint(re.rules))
	writeRuleEngine(w, re)
	w.u64(fnv64(w.buf))
	return w.buf
}

// RestoreRuleEngine validates a SnapshotRuleEngine blob against the
// engine's current ruleset and installs the decoded state. Decoding is
// two-phase like engine restore: nothing is installed unless the whole
// blob parses cleanly, so a corrupt checkpoint can never leave the
// aggregator half-restored.
func RestoreRuleEngine(re *RuleEngine, data []byte) error {
	body, err := openControlFrame(data, aggSnapMagic, aggSnapVersion, "aggregator checkpoint")
	if err != nil {
		return err
	}
	r := &snapReader{buf: body}
	if got, want := r.u64(), rulesFingerprint(re.rules); r.err == nil && got != want {
		return fmt.Errorf("core: aggregator checkpoint was written by a different ruleset (fingerprint %016x, want %016x)", got, want)
	}
	snap := readRuleEngine(r, re.rules)
	if r.err != nil {
		return fmt.Errorf("core: aggregator checkpoint corrupt: %w", r.err)
	}
	if !r.done() {
		return fmt.Errorf("core: aggregator checkpoint corrupt (%d trailing bytes)", r.remaining())
	}
	installRuleEngine(re, snap, true)
	return nil
}

// NewWireEncoder / NewWireDecoder expose the snapshot codec's primitives
// to the coop package for its own control-plane envelopes (the
// aggregator's full checkpoint wraps per-point sequence cursors around a
// SnapshotRuleEngine blob). The encoder appends a trailing FNV-64a
// checksum on Finish; the decoder verifies it up front.

// WireEncoder builds a checksummed control-plane blob from the snapshot
// codec's fixed-width big-endian primitives.
type WireEncoder struct {
	w snapWriter
}

// NewWireEncoder starts a blob with the given magic tag and version byte.
func NewWireEncoder(magic string, version uint8) *WireEncoder {
	e := &WireEncoder{}
	e.w.buf = append(e.w.buf, magic...)
	e.w.u8(version)
	return e
}

// U64 appends a big-endian uint64.
func (e *WireEncoder) U64(v uint64) { e.w.u64(v) }

// Dur appends a duration.
func (e *WireEncoder) Dur(d time.Duration) { e.w.dur(d) }

// Str appends a length-prefixed string.
func (e *WireEncoder) Str(s string) { e.w.str(s) }

// Bytes appends a length-prefixed byte string.
func (e *WireEncoder) Bytes(b []byte) { e.w.bytes(b) }

// Bool appends a boolean byte.
func (e *WireEncoder) Bool(v bool) { e.w.bool(v) }

// Event appends an event in the snapshot codec's event layout.
func (e *WireEncoder) Event(ev Event) { writeEvent(&e.w, ev) }

// Finish appends the checksum and returns the completed blob. The
// encoder must not be reused afterwards.
func (e *WireEncoder) Finish() []byte {
	e.w.u64(fnv64(e.w.buf))
	return e.w.buf
}

// WireDecoder consumes a WireEncoder blob with the snapshot reader's
// sticky-error bounds checking.
type WireDecoder struct {
	r snapReader
}

// NewWireDecoder validates the blob's magic, version and checksum and
// positions a decoder at the payload.
func NewWireDecoder(data []byte, magic string, version uint8, what string) (*WireDecoder, error) {
	body, err := openControlFrame(data, magic, version, what)
	if err != nil {
		return nil, err
	}
	return &WireDecoder{r: snapReader{buf: body}}, nil
}

// U64 reads a big-endian uint64.
func (d *WireDecoder) U64() uint64 { return d.r.u64() }

// Dur reads a duration.
func (d *WireDecoder) Dur() time.Duration { return d.r.dur() }

// Str reads a length-prefixed string.
func (d *WireDecoder) Str() string { return d.r.strv() }

// Bytes reads a length-prefixed byte string.
func (d *WireDecoder) Bytes() []byte { return d.r.bytesv() }

// Bool reads a boolean byte.
func (d *WireDecoder) Bool() bool { return d.r.boolv() }

// Event reads an event in the snapshot codec's event layout.
func (d *WireDecoder) Event() Event { return readEvent(&d.r) }

// Count reads a u32 element count, rejecting hostile length prefixes
// that exceed the remaining bytes.
func (d *WireDecoder) Count() int { return d.r.count() }

// Err returns the first decode failure, if any.
func (d *WireDecoder) Err() error { return d.r.err }

// Close verifies the blob was fully consumed without error.
func (d *WireDecoder) Close(what string) error {
	if d.r.err != nil {
		return fmt.Errorf("core: %s corrupt: %w", what, d.r.err)
	}
	if !d.r.done() {
		return fmt.Errorf("core: %s corrupt (%d trailing bytes)", what, d.r.remaining())
	}
	return nil
}
