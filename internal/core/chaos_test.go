package core_test

// Chaos suite: drives the sharded engine through injected worker panics,
// stalls, and wire corruption, asserting the failure-containment
// guarantees — quarantine without collateral damage, exact shed/evict
// accounting, self-monitoring alerts, and no deadlocks (the suite runs
// under -race in CI).

import (
	"fmt"
	"net/netip"
	"sort"
	"testing"
	"time"

	"scidive/internal/chaoscore"
	"scidive/internal/core"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// findAlert returns the first alert with the given rule, if any.
func findAlert(alerts []core.Alert, rule string) (core.Alert, bool) {
	for _, a := range alerts {
		if a.Rule == rule {
			return a, true
		}
	}
	return core.Alert{}, false
}

// byeCallSession runs the bye scenario serially and returns its frames
// plus the session the bye-attack rule fires on.
func byeCallSession(t *testing.T) ([]rec, string) {
	t.Helper()
	frames := scenarioFrames(t, "bye", 7)
	wantAlerts, _, _ := runSerial(frames)
	bye, ok := findAlert(wantAlerts, core.RuleByeAttack)
	if !ok {
		t.Fatalf("bye scenario raised no bye-attack alert serially: %v", alertKeys(wantAlerts))
	}
	return frames, bye.Session
}

// settleHealth polls until every shard's ledger balances (routed ==
// processed + shed), failing the test if it never does — an imbalance
// means frames were lost without accounting.
func settleHealth(t *testing.T, eng *core.ShardedEngine) []core.ShardHealth {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		health := eng.ShardHealth()
		balanced := true
		for _, h := range health {
			if h.FramesRouted != h.FramesProcessed+h.FramesShed {
				balanced = false
			}
		}
		if balanced {
			return health
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard ledgers never balanced: %+v", health)
		}
		time.Sleep(time.Millisecond)
	}
}

func sortedAlertKeys(alerts []core.Alert) []string {
	keys := alertKeys(alerts)
	sort.Strings(keys)
	return keys
}

// TestShardPanicQuarantine panics one shard at its first frame and
// asserts: the bye-attack detection on the OTHER shard survives, the
// failure and the resulting frame loss raise self-alerts, every dropped
// frame is accounted, and the whole outcome is run-to-run deterministic.
func TestShardPanicQuarantine(t *testing.T) {
	frames, session := byeCallSession(t)
	const shards = 2
	victimShard := core.ShardOf(session, shards)
	panicShard := 1 - victimShard

	run := func() ([]core.Alert, core.EngineStats, []core.ShardHealth) {
		inj := new(chaoscore.ScriptedInjector).PanicAt(panicShard, 0)
		eng := core.NewShardedEngine(core.Config{}, shards, core.WithFaultInjector(inj))
		for _, r := range frames {
			eng.HandleFrame(r.at, r.frame)
		}
		eng.Close()
		health := settleHealth(t, eng)
		return eng.Alerts(), eng.Stats(), health
	}

	alerts, stats, health := run()

	if _, ok := findAlert(alerts, core.RuleByeAttack); !ok {
		t.Errorf("bye-attack detection on shard %d lost to shard %d's panic: %v",
			victimShard, panicShard, alertKeys(alerts))
	}
	sf, ok := findAlert(alerts, core.RuleShardFailure)
	if !ok {
		t.Fatalf("no shard-failure alert after injected panic: %v", alertKeys(alerts))
	}
	if want := fmt.Sprintf("shard:%d", panicShard); sf.Session != want {
		t.Errorf("shard-failure session = %q, want %q", sf.Session, want)
	}
	if stats.ShardsFailed != 1 || stats.ShardsRestarted != 0 {
		t.Errorf("ShardsFailed=%d ShardsRestarted=%d, want 1/0", stats.ShardsFailed, stats.ShardsRestarted)
	}
	if health[panicShard].State != "panicked" {
		t.Errorf("shard %d state = %q, want panicked", panicShard, health[panicShard].State)
	}
	if health[victimShard].State != "healthy" {
		t.Errorf("shard %d state = %q, want healthy", victimShard, health[victimShard].State)
	}
	if health[panicShard].FramesShed == 0 {
		t.Errorf("panicked shard shed no frames: %+v", health[panicShard])
	}
	if health[victimShard].FramesShed != 0 {
		t.Errorf("healthy shard shed %d frames", health[victimShard].FramesShed)
	}
	var totalShed, totalBatches uint64
	for _, h := range health {
		totalShed += h.FramesShed
		totalBatches += h.BatchesShed
	}
	if uint64(stats.FramesShed) != totalShed || uint64(stats.BatchesShed) != totalBatches {
		t.Errorf("Stats shed %d/%d, ShardHealth sums %d/%d",
			stats.FramesShed, stats.BatchesShed, totalShed, totalBatches)
	}
	if totalBatches > 0 {
		if _, ok := findAlert(alerts, core.RuleIDSOverload); !ok {
			t.Errorf("batches shed but no ids-overload alert: %v", alertKeys(alerts))
		}
	}

	// Exact determinism: identical input, identical injection, identical
	// alerts and accounting — regardless of goroutine scheduling.
	alerts2, stats2, health2 := run()
	if got, want := sortedAlertKeys(alerts2), sortedAlertKeys(alerts); !equalStrings(got, want) {
		t.Errorf("second run alerts differ:\n got %v\nwant %v", got, want)
	}
	if stats2 != stats {
		t.Errorf("second run stats %+v, first %+v", stats2, stats)
	}
	for i := range health {
		if health2[i] != health[i] {
			t.Errorf("second run shard %d health %+v, first %+v", i, health2[i], health[i])
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardPanicRestart enables RestartFailedShards: a shard panics in
// the middle of one call's traffic, restarts with fresh state, and a
// second call arriving at the same shard afterwards must still be fully
// detected. The failure stays visible in alerts and counters.
func TestShardPanicRestart(t *testing.T) {
	const shards = 2
	id1 := callIDForShard(0, shards)
	var id2 string
	for i := 0; ; i++ {
		id2 = fmt.Sprintf("chaos-restart-%d@test", i)
		if core.ShardOf(id2, shards) == 0 {
			break
		}
	}
	g1 := &chaosGen{}
	g1.byeAttackCall(id1,
		netip.AddrFrom4([4]byte{10, 0, 0, 3}), netip.AddrFrom4([4]byte{10, 0, 0, 4}),
		10004, 10006)
	g2 := &chaosGen{now: g1.now}
	g2.byeAttackCall(id2,
		netip.AddrFrom4([4]byte{10, 0, 0, 5}), netip.AddrFrom4([4]byte{10, 0, 0, 6}),
		10008, 10010)

	inj := new(chaoscore.ScriptedInjector).PanicAt(0, 6) // mid-call-1 media
	cfg := core.Config{Limits: core.Limits{RestartFailedShards: true}}
	eng := core.NewShardedEngine(cfg, shards, core.WithFaultInjector(inj))
	for _, r := range g1.frames {
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Flush() // batch boundary: the panic lands in call 1's batch only
	for _, r := range g2.frames {
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Close()
	health := settleHealth(t, eng)
	alerts := eng.Alerts()
	stats := eng.Stats()

	bye, ok := findAlert(alerts, core.RuleByeAttack)
	if !ok {
		t.Fatalf("no bye-attack detected after shard restart: %v", alertKeys(alerts))
	}
	if bye.Session != id2 {
		t.Errorf("bye-attack session = %q, want post-restart call %q", bye.Session, id2)
	}
	if _, ok := findAlert(alerts, core.RuleShardFailure); !ok {
		t.Errorf("restarted shard raised no shard-failure alert: %v", alertKeys(alerts))
	}
	if stats.ShardsFailed != 1 || stats.ShardsRestarted != 1 {
		t.Errorf("ShardsFailed=%d ShardsRestarted=%d, want 1/1", stats.ShardsFailed, stats.ShardsRestarted)
	}
	h := health[0]
	if h.State != "healthy" {
		t.Errorf("restarted shard state = %q, want healthy", h.State)
	}
	if h.FramesShed == 0 {
		t.Errorf("panicking batch remainder not accounted as shed: %+v", h)
	}
	// The post-restart call is 16 frames; everything processed must cover
	// at least it plus the pre-panic frames.
	if h.FramesProcessed < uint64(len(g2.frames)) {
		t.Errorf("restarted shard processed %d frames, want at least the %d post-restart ones",
			h.FramesProcessed, len(g2.frames))
	}
}

// chaosGen builds hand-routed traffic: calls whose Call-IDs are chosen
// to land on specific shards, plus RTP spam pinned to one shard.
type chaosGen struct {
	now    time.Duration
	ipid   uint16
	frames []rec
}

func (g *chaosGen) emit(srcIP, dstIP netip.Addr, srcPort, dstPort uint16, payload []byte) {
	g.ipid++
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: macFor(srcIP), DstMAC: macFor(dstIP),
		SrcIP: srcIP, DstIP: dstIP,
		SrcPort: srcPort, DstPort: dstPort,
		IPID: g.ipid, Payload: payload,
	}, 0)
	if err != nil {
		panic(err)
	}
	for _, fr := range frames {
		g.frames = append(g.frames, rec{at: g.now, frame: fr})
		g.now += time.Millisecond
	}
}

func (g *chaosGen) rtp(srcIP, dstIP netip.Addr, srcPort, dstPort uint16, seq uint16, ssrc uint32) {
	p := rtp.Packet{
		Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: uint32(seq) * 160, SSRC: ssrc},
		Payload: []byte("0123456789abcdef0123"),
	}
	buf, err := p.Marshal()
	if err != nil {
		panic(err)
	}
	g.emit(srcIP, dstIP, srcPort, dstPort, buf)
}

func chAddr(a sip.Address, tag string) sip.Address {
	if tag != "" {
		a = a.WithTag(tag)
	}
	return a
}

// byeAttackCall appends a full established call on callID followed by a
// BYE and orphan RTP from the BYE sender — the Figure 5 detection.
func (g *chaosGen) byeAttackCall(callID string, callerIP, calleeIP netip.Addr, callerPort, calleePort uint16) {
	callerMedia := netip.AddrPortFrom(callerIP, callerPort)
	calleeMedia := netip.AddrPortFrom(calleeIP, calleePort)
	caller := sip.Address{URI: sip.URI{User: "chaos-a", Host: callerIP.String()}}
	callee := sip.Address{URI: sip.URI{User: "chaos-b", Host: calleeIP.String()}}
	via := func(ip netip.Addr) sip.Via {
		return sip.Via{Transport: "UDP", SentBy: ip.String(), Params: map[string]string{"branch": "z9hG4bK" + callID}}
	}
	inv := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: callee.URI.String(),
		From:       chAddr(caller, "tA"),
		To:         callee,
		CallID:     callID,
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via:        via(callerIP),
		Body:       sdp.NewAudioSession("a", callerMedia.Addr(), callerMedia.Port()).Marshal(),
		BodyType:   "application/sdp",
	})
	g.emit(callerIP, calleeIP, sip.DefaultPort, sip.DefaultPort, inv.Marshal())
	ok := sip.NewResponse(inv, sip.StatusOK, "tB")
	ok.Headers.Add(sip.HdrContentType, "application/sdp")
	ok.Body = sdp.NewAudioSession("b", calleeMedia.Addr(), calleeMedia.Port()).Marshal()
	g.emit(calleeIP, callerIP, sip.DefaultPort, sip.DefaultPort, ok.Marshal())
	for i := 0; i < 4; i++ {
		g.rtp(callerIP, calleeIP, callerPort, calleePort, uint16(100+i), 0xA0A0)
		g.rtp(calleeIP, callerIP, calleePort, callerPort, uint16(200+i), 0xB0B0)
	}
	bye := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodBye,
		RequestURI: callee.URI.String(),
		From:       chAddr(caller, "tA"),
		To:         chAddr(callee, "tB"),
		CallID:     callID,
		CSeq:       sip.CSeq{Seq: 2, Method: sip.MethodBye},
		Via:        via(callerIP),
	})
	g.emit(callerIP, calleeIP, sip.DefaultPort, sip.DefaultPort, bye.Marshal())
	for i := 0; i < 3; i++ {
		g.rtp(callerIP, calleeIP, callerPort, calleePort, uint16(110+i), 0xA0A0) // orphan media after BYE
	}
}

// callIDForShard finds a Call-ID that routes to the wanted shard.
func callIDForShard(want, shards int) string {
	for i := 0; ; i++ {
		id := fmt.Sprintf("chaos-call-%d@test", i)
		if core.ShardOf(id, shards) == want {
			return id
		}
	}
}

// TestStallWatchdogQuarantine stalls one shard mid-stream with load
// shedding and the watchdog enabled: the router must never block past
// ShedAfter, the watchdog must quarantine the stalled shard and say so,
// the bye-attack on the other shard must still fire, and once the stall
// clears every frame must be accounted processed or shed.
func TestStallWatchdogQuarantine(t *testing.T) {
	const shards = 2
	spamDst := netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 10000)
	spamShard := core.ShardOf("rtp:"+spamDst.String(), shards)
	goodShard := 1 - spamShard
	callID := callIDForShard(goodShard, shards)

	g := &chaosGen{}
	g.byeAttackCall(callID,
		netip.AddrFrom4([4]byte{10, 0, 0, 3}), netip.AddrFrom4([4]byte{10, 0, 0, 4}),
		10004, 10006)
	spamSrc := netip.AddrFrom4([4]byte{10, 0, 0, 66})
	const spamFrames = 3000
	for i := 0; i < spamFrames; i++ {
		g.rtp(spamSrc, spamDst.Addr(), 40000, spamDst.Port(), uint16(i), 0x5BAD)
	}

	// The stall must comfortably exceed StallTimeout, and StallTimeout
	// must comfortably exceed race-detector scheduling jitter so a slow
	// but healthy worker is never misread as stuck.
	inj := new(chaoscore.ScriptedInjector).StallAt(spamShard, 40, 400*time.Millisecond)
	cfg := core.Config{Limits: core.Limits{
		ShedAfter:    2 * time.Millisecond,
		StallTimeout: 75 * time.Millisecond,
	}}
	eng := core.NewShardedEngine(cfg, shards, core.WithFaultInjector(inj))

	start := time.Now()
	for _, r := range g.frames {
		eng.HandleFrame(r.at, r.frame)
	}
	feedTime := time.Since(start)
	// The router's worst case is one ShedAfter wait per batch — far from
	// the 300ms the shard itself is stuck for. Generous bound to stay
	// robust on slow CI, while still catching an unbounded block.
	if feedTime > 2*time.Second {
		t.Errorf("feeding took %v; router appears to have blocked on the stalled shard", feedTime)
	}

	alerts := eng.Alerts() // Flush gives up on quarantined-stalled shards
	if _, ok := findAlert(alerts, core.RuleByeAttack); !ok {
		t.Errorf("bye-attack on healthy shard %d lost during shard %d stall: %v",
			goodShard, spamShard, alertKeys(alerts))
	}
	eng.Close()
	health := settleHealth(t, eng)

	alerts = eng.Alerts()
	sf, ok := findAlert(alerts, core.RuleShardFailure)
	if !ok {
		t.Fatalf("watchdog raised no shard-failure alert: %v", alertKeys(alerts))
	}
	if want := fmt.Sprintf("shard:%d", spamShard); sf.Session != want {
		t.Errorf("shard-failure session = %q, want %q", sf.Session, want)
	}
	if _, ok := findAlert(alerts, core.RuleIDSOverload); !ok {
		t.Errorf("frames were shed but no ids-overload alert: %v", alertKeys(alerts))
	}
	if health[spamShard].State != "stalled" {
		t.Errorf("stalled shard state = %q, want stalled", health[spamShard].State)
	}
	if health[spamShard].FramesShed == 0 {
		t.Errorf("stalled shard shed nothing: %+v", health[spamShard])
	}
	stats := eng.Stats()
	if stats.ShardsFailed == 0 {
		t.Errorf("ShardsFailed = 0 after watchdog quarantine")
	}
	var routed, settled uint64
	for _, h := range health {
		routed += h.FramesRouted
		settled += h.FramesProcessed + h.FramesShed
	}
	if routed != settled {
		t.Errorf("accounting leak: %d routed, %d processed+shed", routed, settled)
	}
	if uint64(stats.FramesShed) != health[0].FramesShed+health[1].FramesShed {
		t.Errorf("Stats.FramesShed=%d disagrees with ShardHealth %+v", stats.FramesShed, health)
	}
}

// TestFramesAfterClose pins the fix for frames arriving after Close:
// they must be dropped AND counted, not silently ignored.
func TestFramesAfterClose(t *testing.T) {
	frames := scenarioFrames(t, "benign", 7)
	eng := core.NewShardedEngine(core.Config{}, 2)
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Close()
	before := eng.Stats()
	if before.FramesAfterClose != 0 {
		t.Fatalf("FramesAfterClose = %d before any late frame", before.FramesAfterClose)
	}
	for i, r := range frames {
		if i == 3 {
			break
		}
		eng.HandleFrame(r.at, r.frame)
	}
	after := eng.Stats()
	if after.FramesAfterClose != 3 {
		t.Errorf("FramesAfterClose = %d, want 3", after.FramesAfterClose)
	}
	if after.Frames != before.Frames {
		t.Errorf("late frames leaked into Frames: %d -> %d", before.Frames, after.Frames)
	}
	// Close is idempotent and late frames keep counting.
	eng.Close()
	eng.HandleFrame(0, frames[0].frame)
	if got := eng.Stats().FramesAfterClose; got != 4 {
		t.Errorf("FramesAfterClose = %d after repeat Close, want 4", got)
	}
}

// TestShardedDiffCorruptedFrames runs a scenario through the corrupting
// tap: random byte flips must degrade into parse errors and raw
// footprints — identically on both engines — never into a crash.
func TestShardedDiffCorruptedFrames(t *testing.T) {
	for _, name := range []string{"bye", "hijack", "fragflood"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)
			var corrupted []rec
			tap := chaoscore.CorruptingTap(42, 3, func(at time.Duration, frame []byte) {
				corrupted = append(corrupted, rec{at: at, frame: frame})
			})
			for _, r := range frames {
				tap(r.at, r.frame)
			}
			diffRuns(t, "corrupted "+name, corrupted)
		})
	}
}
