package core_test

// Resume-rejection tests: a checkpoint must only restore into an engine
// configured identically to the one that wrote it. Every mismatch class
// — corrupt bytes, wrong engine kind, wrong shard count, a different
// correlator registry, different Limits, an edited ruleset — must fail
// loudly with an error that names what differs, and must leave the
// target engine untouched (still able to run from scratch).

import (
	"strings"
	"testing"
	"time"

	"scidive/internal/core"
	"scidive/internal/experiments"
)

// byeSnapshot returns a mid-scenario serial checkpoint plus the frames.
func byeSnapshot(t *testing.T, cfg core.Config) ([]byte, []rec) {
	t.Helper()
	frames := scenarioFrames(t, "bye", 7)
	eng := core.NewEngine(cfg, core.WithEventLog())
	for _, r := range frames[:len(frames)/2] {
		eng.HandleFrame(r.at, r.frame)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap, frames
}

// expectRejection asserts the restore fails, the error mentions every
// wanted substring, and the rejecting engine is still pristine.
func expectRejection(t *testing.T, eng interface {
	RestoreSnapshot([]byte) error
}, snap []byte, wants ...string) {
	t.Helper()
	err := eng.RestoreSnapshot(snap)
	if err == nil {
		t.Fatalf("restore succeeded, want rejection mentioning %q", wants)
	}
	for _, w := range wants {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("rejection error %q does not mention %q", err, w)
		}
	}
}

func TestResumeRejectsWrongEngineKind(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})
	sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh.Close()
	expectRejection(t, sh, snap, "serial engine", "sharded")

	shSnap := func() []byte {
		e := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
		defer e.Close()
		frames := scenarioFrames(t, "bye", 7)
		for _, r := range frames[:4] {
			e.HandleFrame(r.at, r.frame)
		}
		s, err := e.Snapshot()
		if err != nil {
			t.Fatalf("sharded snapshot: %v", err)
		}
		return s
	}()
	serial := core.NewEngine(core.Config{}, core.WithEventLog())
	expectRejection(t, serial, shSnap, "sharded engine", "serial")
}

func TestResumeRejectsWrongShardCount(t *testing.T) {
	e := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	frames := scenarioFrames(t, "bye", 7)
	for _, r := range frames[:4] {
		e.HandleFrame(r.at, r.frame)
	}
	snap, err := e.Snapshot()
	e.Close()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	other := core.NewShardedEngine(core.Config{}, 8, core.WithEventLog())
	defer other.Close()
	expectRejection(t, other, snap, "2", "8", "shard")
}

// TestResumeRejectsIngestMismatch: the ingest width is part of a
// checkpoint's identity — a snapshot written behind 2 ingest routers
// must not silently restore into an engine running 4 (and a parallel
// checkpoint must not restore into the synchronous router's header).
func TestResumeRejectsIngestMismatch(t *testing.T) {
	e := core.NewShardedEngine(core.Config{IngestRouters: 2}, 2, core.WithEventLog())
	frames := scenarioFrames(t, "bye", 7)
	for _, r := range frames[:len(frames)/2] {
		e.HandleFrame(r.at, r.frame)
	}
	snap, err := e.Snapshot()
	e.Close()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	wide := core.NewShardedEngine(core.Config{IngestRouters: 4}, 2, core.WithEventLog())
	defer wide.Close()
	expectRejection(t, wide, snap, "ingest", "2", "4")

	narrow := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer narrow.Close()
	expectRejection(t, narrow, snap, "ingest", "2", "1")

	// Same width restores and resumes byte-identically.
	same := core.NewShardedEngine(core.Config{IngestRouters: 2}, 2, core.WithEventLog())
	defer same.Close()
	if err := same.RestoreSnapshot(snap); err != nil {
		t.Fatalf("same-width restore failed: %v", err)
	}
	for _, r := range frames[len(frames)/2:] {
		same.HandleFrame(r.at, r.frame)
	}
	same.Flush()
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	compareToBaseline(t, "ingest resume", same.Alerts(), same.Events(), same.Stats(),
		wantAlerts, wantEvents, wantStats)
}

func TestResumeRejectsDifferentCorrelators(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})
	// The CLI's -correlators flag builds exactly this kind of subset.
	subset := core.DefaultCorrelators()[:3] // sip, im, rtp
	eng := core.NewEngine(core.Config{Correlators: subset}, core.WithEventLog())
	expectRejection(t, eng, snap, "correlator set", "sip, im, rtp")
}

func TestResumeRejectsDifferentLimits(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})
	eng := core.NewEngine(core.Config{Limits: core.Limits{MaxSessions: 5}}, core.WithEventLog())
	expectRejection(t, eng, snap, "config hash", "Limits")
}

func TestResumeRejectsDifferentGenConfig(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})
	eng := core.NewEngine(core.Config{SessionTimeout: 37 * time.Second}, core.WithEventLog())
	expectRejection(t, eng, snap, "config hash")
}

func TestResumeRejectsEditedRules(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})
	// An operator editing default.rules between runs lands here: same
	// engine, same limits, one rule's threshold/steps changed.
	rules := core.DefaultRuleset()
	rules[0].Steps = rules[0].Steps[:1]
	eng := core.NewEngine(core.Config{Rules: rules}, core.WithEventLog())
	expectRejection(t, eng, snap, "ruleset hash", "rules changed")
}

func TestResumeRejectsUsedEngine(t *testing.T) {
	snap, frames := byeSnapshot(t, core.Config{})
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	eng.HandleFrame(frames[0].at, frames[0].frame)
	expectRejection(t, eng, snap, "fresh engine")

	sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh.Close()
	sh.HandleFrame(frames[0].at, frames[0].frame)
	sh.Flush()
	e2 := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	frames2 := scenarioFrames(t, "bye", 7)
	for _, r := range frames2[:4] {
		e2.HandleFrame(r.at, r.frame)
	}
	shSnap, err := e2.Snapshot()
	e2.Close()
	if err != nil {
		t.Fatalf("sharded snapshot: %v", err)
	}
	expectRejection(t, sh, shSnap, "fresh engine")
}

func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})

	truncated := snap[:len(snap)/2]
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := eng.RestoreSnapshot(truncated); err == nil {
		t.Error("truncated checkpoint restored without error")
	}

	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/3] ^= 0x40
	eng2 := core.NewEngine(core.Config{}, core.WithEventLog())
	expectRejection(t, eng2, flipped, "checksum")

	garbage := []byte("not a checkpoint at all")
	eng3 := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := eng3.RestoreSnapshot(garbage); err == nil {
		t.Error("garbage restored without error")
	}
}

// TestRejectedRestoreLeavesEngineUsable: after any rejection the target
// engine must behave exactly like a never-touched engine.
func TestRejectedRestoreLeavesEngineUsable(t *testing.T) {
	snap, frames := byeSnapshot(t, core.Config{})

	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)-1] ^= 0xFF // breaks the checksum
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := eng.RestoreSnapshot(flipped); err == nil {
		t.Fatal("corrupt checkpoint restored")
	}
	if st := eng.Stats(); st.Frames != 0 || st.Events != 0 {
		t.Fatalf("rejected restore left state behind: %+v", st)
	}
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
	}
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	compareToBaseline(t, "post-rejection run", eng.Alerts(), eng.Events(), eng.Stats(),
		wantAlerts, wantEvents, wantStats)
}

// TestResumeRejectionsAcrossScenarios sweeps the mismatch classes over
// checkpoints from several scenarios, so rejection does not depend on
// which detection state happens to be in the body.
func TestResumeRejectionsAcrossScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: single-scenario rejection tests cover the classes")
	}
	for _, name := range experiments.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)
			eng := core.NewEngine(core.Config{}, core.WithEventLog())
			for _, r := range frames[:len(frames)/2] {
				eng.HandleFrame(r.at, r.frame)
			}
			snap, err := eng.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			limited := core.NewEngine(core.Config{Limits: core.Limits{MaxBindings: 3}}, core.WithEventLog())
			expectRejection(t, limited, snap, "config hash")
			rules := core.DefaultRuleset()[:5]
			ruled := core.NewEngine(core.Config{Rules: rules}, core.WithEventLog())
			expectRejection(t, ruled, snap, "ruleset hash")
		})
	}
}
