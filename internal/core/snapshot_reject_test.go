package core_test

// Resume-rejection tests: a checkpoint must only restore into an engine
// whose detection configuration matches the one that wrote it. Every
// mismatch class — corrupt bytes, a different correlator registry,
// different Limits, an edited ruleset, a pre-portable (v2) checkpoint —
// must fail loudly with an error that names what differs and says how to
// proceed, and must leave the target engine untouched (still able to run
// from scratch). Geometry is deliberately NOT a mismatch class: portable
// (v3) checkpoints are keyed by session, so engine kind, shard count and
// ingest width may all differ between capture and resume — the
// acceptance tests below (and snapshot_geometry_test.go) hold those
// resumes to the uninterrupted run's exact output.

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scidive/internal/core"
	"scidive/internal/experiments"
)

// byeSnapshot returns a mid-scenario serial checkpoint plus the frames.
func byeSnapshot(t *testing.T, cfg core.Config) ([]byte, []rec) {
	t.Helper()
	frames := scenarioFrames(t, "bye", 7)
	eng := core.NewEngine(cfg, core.WithEventLog())
	for _, r := range frames[:len(frames)/2] {
		eng.HandleFrame(r.at, r.frame)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap, frames
}

// expectRejection asserts the restore fails, the error mentions every
// wanted substring, and the rejecting engine is still pristine.
func expectRejection(t *testing.T, eng interface {
	RestoreSnapshot([]byte) error
}, snap []byte, wants ...string) {
	t.Helper()
	err := eng.RestoreSnapshot(snap)
	if err == nil {
		t.Fatalf("restore succeeded, want rejection mentioning %q", wants)
	}
	for _, w := range wants {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("rejection error %q does not mention %q", err, w)
		}
	}
}

// TestResumeAcrossEngineKinds: portable checkpoints cross the engine-kind
// boundary in both directions — a serial capture resumes sharded and a
// sharded capture resumes serial, each reproducing the uninterrupted
// serial run exactly.
func TestResumeAcrossEngineKinds(t *testing.T) {
	snap, frames := byeSnapshot(t, core.Config{})
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})

	sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh.Close()
	if err := sh.RestoreSnapshot(snap); err != nil {
		t.Fatalf("serial checkpoint did not restore into sharded engine: %v", err)
	}
	for _, r := range frames[len(frames)/2:] {
		sh.HandleFrame(r.at, r.frame)
	}
	sh.Flush()
	compareToBaseline(t, "serial→sharded resume", sh.Alerts(), sh.Events(), sh.Stats(),
		wantAlerts, wantEvents, wantStats)

	shSnap := func() []byte {
		e := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
		defer e.Close()
		for _, r := range frames[:len(frames)/2] {
			e.HandleFrame(r.at, r.frame)
		}
		s, err := e.Snapshot()
		if err != nil {
			t.Fatalf("sharded snapshot: %v", err)
		}
		return s
	}()
	serial := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := serial.RestoreSnapshot(shSnap); err != nil {
		t.Fatalf("sharded checkpoint did not restore into serial engine: %v", err)
	}
	for _, r := range frames[len(frames)/2:] {
		serial.HandleFrame(r.at, r.frame)
	}
	compareToBaseline(t, "sharded→serial resume", serial.Alerts(), serial.Events(), serial.Stats(),
		wantAlerts, wantEvents, wantStats)
}

// TestResumeAcrossShardCounts: a 2-shard capture resumes at 8 shards —
// the grow-the-fleet operation — with outputs identical to the
// uninterrupted run.
func TestResumeAcrossShardCounts(t *testing.T) {
	e := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	frames := scenarioFrames(t, "bye", 7)
	for _, r := range frames[:len(frames)/2] {
		e.HandleFrame(r.at, r.frame)
	}
	snap, err := e.Snapshot()
	e.Close()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	other := core.NewShardedEngine(core.Config{}, 8, core.WithEventLog())
	defer other.Close()
	if err := other.RestoreSnapshot(snap); err != nil {
		t.Fatalf("2-shard checkpoint did not restore at 8 shards: %v", err)
	}
	for _, r := range frames[len(frames)/2:] {
		other.HandleFrame(r.at, r.frame)
	}
	other.Flush()
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	compareToBaseline(t, "2→8 shard resume", other.Alerts(), other.Events(), other.Stats(),
		wantAlerts, wantEvents, wantStats)
}

// TestResumeAcrossIngestWidths: the ingest width recorded in a portable
// checkpoint is informational — a capture behind 2 ingest routers resumes
// behind 4, behind the synchronous router, and at the same width, all
// matching the uninterrupted run.
func TestResumeAcrossIngestWidths(t *testing.T) {
	e := core.NewShardedEngine(core.Config{IngestRouters: 2}, 2, core.WithEventLog())
	frames := scenarioFrames(t, "bye", 7)
	for _, r := range frames[:len(frames)/2] {
		e.HandleFrame(r.at, r.frame)
	}
	snap, err := e.Snapshot()
	e.Close()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{
		{"wider", core.Config{IngestRouters: 4}},
		{"synchronous", core.Config{}},
		{"same", core.Config{IngestRouters: 2}},
	} {
		eng := core.NewShardedEngine(tc.cfg, 2, core.WithEventLog())
		if err := eng.RestoreSnapshot(snap); err != nil {
			eng.Close()
			t.Fatalf("%s-ingest restore failed: %v", tc.name, err)
		}
		for _, r := range frames[len(frames)/2:] {
			eng.HandleFrame(r.at, r.frame)
		}
		eng.Flush()
		compareToBaseline(t, tc.name+"-ingest resume", eng.Alerts(), eng.Events(), eng.Stats(),
			wantAlerts, wantEvents, wantStats)
		eng.Close()
	}
}

func TestResumeRejectsDifferentCorrelators(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})
	// The CLI's -correlators flag builds exactly this kind of subset.
	subset := core.DefaultCorrelators()[:3] // sip, im, rtp
	eng := core.NewEngine(core.Config{Correlators: subset}, core.WithEventLog())
	expectRejection(t, eng, snap, "correlator set", "sip, im, rtp")
}

func TestResumeRejectsDifferentLimits(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})
	eng := core.NewEngine(core.Config{Limits: core.Limits{MaxSessions: 5}}, core.WithEventLog())
	expectRejection(t, eng, snap, "config hash", "Limits")
}

func TestResumeRejectsDifferentGenConfig(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})
	eng := core.NewEngine(core.Config{SessionTimeout: 37 * time.Second}, core.WithEventLog())
	expectRejection(t, eng, snap, "config hash")
}

func TestResumeRejectsEditedRules(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})
	// An operator editing default.rules between runs lands here: same
	// engine, same limits, one rule's threshold/steps changed.
	rules := core.DefaultRuleset()
	rules[0].Steps = rules[0].Steps[:1]
	eng := core.NewEngine(core.Config{Rules: rules}, core.WithEventLog())
	expectRejection(t, eng, snap, "ruleset hash", "rules changed")
}

func TestResumeRejectsUsedEngine(t *testing.T) {
	snap, frames := byeSnapshot(t, core.Config{})
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	eng.HandleFrame(frames[0].at, frames[0].frame)
	expectRejection(t, eng, snap, "fresh engine")

	sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh.Close()
	sh.HandleFrame(frames[0].at, frames[0].frame)
	sh.Flush()
	e2 := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	frames2 := scenarioFrames(t, "bye", 7)
	for _, r := range frames2[:4] {
		e2.HandleFrame(r.at, r.frame)
	}
	shSnap, err := e2.Snapshot()
	e2.Close()
	if err != nil {
		t.Fatalf("sharded snapshot: %v", err)
	}
	expectRejection(t, sh, shSnap, "fresh engine")
}

func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	snap, _ := byeSnapshot(t, core.Config{})

	truncated := snap[:len(snap)/2]
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := eng.RestoreSnapshot(truncated); err == nil {
		t.Error("truncated checkpoint restored without error")
	}

	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/3] ^= 0x40
	eng2 := core.NewEngine(core.Config{}, core.WithEventLog())
	expectRejection(t, eng2, flipped, "checksum")

	garbage := []byte("not a checkpoint at all")
	eng3 := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := eng3.RestoreSnapshot(garbage); err == nil {
		t.Error("garbage restored without error")
	}
}

// restampChecksum recomputes the trailing FNV-1a checksum after a test
// mutates checkpoint bytes, so the mutation reaches the body decoder
// instead of being caught by the checksum gate.
func restampChecksum(data []byte) []byte {
	body := data[:len(data)-8]
	h := uint64(14695981039346656037)
	for _, b := range body {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return binary.BigEndian.AppendUint64(append([]byte(nil), body...), h)
}

// TestResumeRejectsV2Checkpoint: a pre-portable (v2) checkpoint — pinned
// under testdata as a stand-in for one on an operator's disk — must be
// refused by both engine kinds with an error naming the format gap and
// the way forward, never mis-decoded.
func TestResumeRejectsV2Checkpoint(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_snapshots", "bye_serial_v2.ckpt"))
	if err != nil {
		t.Fatalf("no preserved v2 golden: %v", err)
	}
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	expectRejection(t, eng, data, "format v2", "only v6", "re-capture")
	sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh.Close()
	expectRejection(t, sh, data, "format v2", "only v6", "re-capture")
}

// TestResumeRejectsV3Checkpoint: a pre-stream-transport (v3) checkpoint —
// pinned under testdata as a stand-in for one on an operator's disk — must
// be refused by both engine kinds with an error naming the format gap and
// the way forward. v3 lacks the TCP stream reassembly/framing section, so
// mis-decoding it would silently resume with stream state dropped.
func TestResumeRejectsV3Checkpoint(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_snapshots", "bye_serial_v3.ckpt"))
	if err != nil {
		t.Fatalf("no preserved v3 golden: %v", err)
	}
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	expectRejection(t, eng, data, "format v3", "only v6", "re-capture")
	sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh.Close()
	expectRejection(t, sh, data, "format v3", "only v6", "re-capture")
}

// TestResumeRejectsCorruptSessionRecords: corruption INSIDE the v3
// session-keyed body — past the checksum gate — must still be rejected by
// both engine kinds, whether it garbles a record (a hostile length
// prefix) or truncates the stream mid-record, and must leave the target
// engine untouched.
func TestResumeRejectsCorruptSessionRecords(t *testing.T) {
	snap, frames := byeSnapshot(t, core.Config{})

	garbled := append([]byte(nil), snap...)
	// Stomp a length prefix mid-body: the bounded count/take readers must
	// refuse it. The offset targets the session-keyed records (retune it
	// when a format change moves raw frame bytes — the one region where a
	// stomp alters content without breaking structure — under it).
	for i := len(garbled)/2 + 8; i < len(garbled)/2+12; i++ {
		garbled[i] = 0xFF
	}
	garbled = restampChecksum(garbled)
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := eng.RestoreSnapshot(garbled); err == nil {
		t.Error("serial: garbled session record restored without error")
	}
	sh := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh.Close()
	if err := sh.RestoreSnapshot(garbled); err == nil {
		t.Error("sharded: garbled session record restored without error")
	}

	truncated := restampChecksum(append([]byte(nil), snap[:len(snap)-40]...))
	eng2 := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := eng2.RestoreSnapshot(truncated); err == nil {
		t.Error("serial: truncated session records restored without error")
	}
	sh2 := core.NewShardedEngine(core.Config{}, 2, core.WithEventLog())
	defer sh2.Close()
	if err := sh2.RestoreSnapshot(truncated); err == nil {
		t.Error("sharded: truncated session records restored without error")
	}

	// Both rejecting engines are still pristine and run from scratch.
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
		sh.HandleFrame(r.at, r.frame)
	}
	sh.Flush()
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	compareToBaseline(t, "serial post-corrupt-rejection run", eng.Alerts(), eng.Events(), eng.Stats(),
		wantAlerts, wantEvents, wantStats)
	compareToBaseline(t, "sharded post-corrupt-rejection run", sh.Alerts(), sh.Events(), sh.Stats(),
		wantAlerts, wantEvents, wantStats)
}

// TestRejectedRestoreLeavesEngineUsable: after any rejection the target
// engine must behave exactly like a never-touched engine.
func TestRejectedRestoreLeavesEngineUsable(t *testing.T) {
	snap, frames := byeSnapshot(t, core.Config{})

	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)-1] ^= 0xFF // breaks the checksum
	eng := core.NewEngine(core.Config{}, core.WithEventLog())
	if err := eng.RestoreSnapshot(flipped); err == nil {
		t.Fatal("corrupt checkpoint restored")
	}
	if st := eng.Stats(); st.Frames != 0 || st.Events != 0 {
		t.Fatalf("rejected restore left state behind: %+v", st)
	}
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
	}
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	compareToBaseline(t, "post-rejection run", eng.Alerts(), eng.Events(), eng.Stats(),
		wantAlerts, wantEvents, wantStats)
}

// TestResumeRejectionsAcrossScenarios sweeps the mismatch classes over
// checkpoints from several scenarios, so rejection does not depend on
// which detection state happens to be in the body.
func TestResumeRejectionsAcrossScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: single-scenario rejection tests cover the classes")
	}
	for _, name := range experiments.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			frames := scenarioFrames(t, name, 7)
			eng := core.NewEngine(core.Config{}, core.WithEventLog())
			for _, r := range frames[:len(frames)/2] {
				eng.HandleFrame(r.at, r.frame)
			}
			snap, err := eng.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			limited := core.NewEngine(core.Config{Limits: core.Limits{MaxBindings: 3}}, core.WithEventLog())
			expectRejection(t, limited, snap, "config hash")
			rules := core.DefaultRuleset()[:5]
			ruled := core.NewEngine(core.Config{Rules: rules}, core.WithEventLog())
			expectRejection(t, ruled, snap, "ruleset hash")
		})
	}
}
