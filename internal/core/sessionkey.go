package core

import (
	"net/netip"
	"time"

	"scidive/internal/sip"
)

// This file is the session-keying core shared by the serial Engine and the
// ShardedEngine. Both engines must agree exactly on (a) which session key a
// footprint is filed under and (b) how SIP sightings mutate per-session
// state, because the sharded router uses the same logic to decide which
// shard owns a frame: a session's SIP, RTP, RTCP and accounting traffic
// must all land on the shard that holds its trails, or cross-protocol
// rules silently stop firing.

// sessionState is the per-call state the generator accumulates.
type sessionState struct {
	callID      string
	lastSeen    time.Duration
	established bool

	callerAOR   string
	calleeAOR   string
	callerTag   string
	calleeTag   string
	callerMedia netip.AddrPort
	calleeMedia netip.AddrPort
	inviteSrcIP netip.Addr // network source of the first INVITE sighting

	byeSeen      bool
	byeAt        time.Duration
	byeFromMedia netip.AddrPort // media of the purported BYE sender

	lastReinviteSeq  uint32
	reinviteSeen     bool
	reinviteAt       time.Duration
	reinviteOldMedia netip.AddrPort // media the "moved" party used before

	badFormat     bool
	acctStart     bool
	unmatchedOnce bool

	// RTCP BYE correlation (three-protocol chain: SIP state, RTP media,
	// RTCP control).
	rtcpByeAt      time.Duration
	rtcpByePending bool
	rtcpByeFired   bool

	// Registration-session state (Section 3.3).
	isRegistration bool
	challenges     int
	floodFired     bool
	guessResponses map[string]struct{}
	guessFired     bool
}

// sessionIndex holds the session table and the SIP transitions that feed
// it. The serial engine's EventGenerator embeds one; the sharded router
// owns a second, independent copy (its "directory") built from the same
// frame stream, which is what lets it attribute media flows to sessions
// without consulting any shard.
//
// With indexed=true the index additionally maintains a reverse map from
// negotiated media endpoint to candidate sessions, turning flow
// attribution from an O(#sessions) scan into a map lookup. Both modes
// return identical results: the scan and the lookup pick the best
// candidate under the same flowSessionLess total order.
type sessionIndex struct {
	sessions   map[string]*sessionState
	pendingReg map[string]string // Call-ID -> AOR awaiting 200
	byMedia    map[netip.AddrPort][]*sessionState

	// endpointKeys interns the address-derived fallback session keys
	// ("rtp:<ep>", "rtcp:<ep>", "raw:<ep>") so steady-state media traffic
	// toward a known endpoint never re-formats the key string per frame.
	endpointKeys map[endpointKeyID]string

	// maxSessions caps the table (0 = unbounded): creating a session at
	// the cap first evicts the least-recently-touched one (ties: smaller
	// Call-ID), reporting it via onCapEvict so the owner can drop the
	// victim's trails and count the eviction.
	maxSessions int
	onCapEvict  func(id string)
}

// newSessionIndex returns an empty index. indexed enables the reverse
// media-endpoint map.
func newSessionIndex(indexed bool) *sessionIndex {
	x := &sessionIndex{
		sessions:     make(map[string]*sessionState),
		pendingReg:   make(map[string]string),
		endpointKeys: make(map[endpointKeyID]string),
	}
	if indexed {
		x.byMedia = make(map[netip.AddrPort][]*sessionState)
	}
	return x
}

// endpointKeyID identifies one interned fallback key: the key kind
// ('r' = rtp, 'c' = rtcp, 'w' = raw) plus the endpoint.
type endpointKeyID struct {
	kind byte
	ap   netip.AddrPort
}

// endpointKeyCap bounds the interned-key table; an adversary spraying
// unique endpoints only forces re-formatting, never unbounded growth.
const endpointKeyCap = 4096

// endpointKey returns the interned prefix+endpoint fallback key.
func (x *sessionIndex) endpointKey(kind byte, prefix string, ap netip.AddrPort) string {
	id := endpointKeyID{kind: kind, ap: ap}
	if s, ok := x.endpointKeys[id]; ok {
		return s
	}
	if len(x.endpointKeys) >= endpointKeyCap {
		clear(x.endpointKeys)
	}
	s := prefix + ap.String()
	x.endpointKeys[id] = s
	return s
}

// core returns the state for a Call-ID, creating it if needed.
func (x *sessionIndex) core(callID string) *sessionState {
	st, ok := x.sessions[callID]
	if !ok {
		if x.maxSessions > 0 && len(x.sessions) >= x.maxSessions {
			x.evictLRU()
		}
		st = &sessionState{callID: callID, guessResponses: make(map[string]struct{})}
		x.sessions[callID] = st
	}
	return st
}

// evictLRU drops the least-recently-touched session (ties broken by the
// smaller Call-ID, so eviction order never depends on map iteration).
func (x *sessionIndex) evictLRU() {
	var vid string
	var vst *sessionState
	for id, st := range x.sessions {
		if vst == nil || st.lastSeen < vst.lastSeen ||
			(st.lastSeen == vst.lastSeen && id < vid) {
			vid, vst = id, st
		}
	}
	if vst == nil {
		return
	}
	x.dropSession(vid, vst)
	if x.onCapEvict != nil {
		x.onCapEvict(vid)
	}
}

// dropSession removes one session and every index entry that points at
// it, including a pending registration keyed by the same Call-ID (left
// dangling by earlier versions of expire).
func (x *sessionIndex) dropSession(id string, st *sessionState) {
	delete(x.sessions, id)
	delete(x.pendingReg, id)
	if x.byMedia != nil {
		x.unindexMedia(st, st.callerMedia)
		x.unindexMedia(st, st.calleeMedia)
	}
}

// touch records session activity for expiry bookkeeping.
func (x *sessionIndex) touch(session string, at time.Duration) {
	if st, ok := x.sessions[session]; ok {
		st.lastSeen = at
	}
}

// expire drops per-session state for sessions idle longer than timeout as
// of now, invoking onEvict (if non-nil) with each evicted session id. It
// returns how many sessions were evicted.
func (x *sessionIndex) expire(now, timeout time.Duration, onEvict func(id string)) int {
	evicted := 0
	for id, st := range x.sessions {
		if now-st.lastSeen > timeout {
			x.dropSession(id, st)
			if onEvict != nil {
				onEvict(id)
			}
			evicted++
		}
	}
	return evicted
}

func (x *sessionIndex) indexMedia(st *sessionState, media netip.AddrPort) {
	if x.byMedia == nil || !media.IsValid() {
		return
	}
	x.byMedia[media] = append(x.byMedia[media], st)
}

func (x *sessionIndex) unindexMedia(st *sessionState, media netip.AddrPort) {
	if x.byMedia == nil || !media.IsValid() {
		return
	}
	list := x.byMedia[media]
	for i, cand := range list {
		if cand == st {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(x.byMedia, media)
	} else {
		x.byMedia[media] = list
	}
}

// setCallerMedia / setCalleeMedia update a session's negotiated media
// endpoints, keeping the reverse index consistent. All media writes must
// go through these.
func (x *sessionIndex) setCallerMedia(st *sessionState, media netip.AddrPort) {
	if st.callerMedia != media {
		x.unindexMedia(st, st.callerMedia)
		x.indexMedia(st, media)
	}
	st.callerMedia = media
}

func (x *sessionIndex) setCalleeMedia(st *sessionState, media netip.AddrPort) {
	if st.calleeMedia != media {
		x.unindexMedia(st, st.calleeMedia)
		x.indexMedia(st, media)
	}
	st.calleeMedia = media
}

// SessionKey returns the session (trail) key a footprint is filed under:
// Call-ID for SIP and accounting, the negotiated session for media flows
// (with an address-derived fallback when no session matches), and a
// destination-derived key for undecodable traffic. The sharded router
// calls this on a footprint it reconstructs from a peeked frame, so both
// engines key trails identically by construction.
func (x *sessionIndex) SessionKey(f Footprint) string {
	switch fp := f.(type) {
	case *SIPFootprint:
		return fp.Msg.CallID()
	case *RTPFootprint:
		if s := x.flowSession(fp.Src, fp.Dst); s != "" {
			return s
		}
		return x.endpointKey('r', "rtp:", fp.Dst)
	case *RTCPFootprint:
		if s := x.rtcpFlowSession(fp.Src, fp.Dst); s != "" {
			return s
		}
		return x.endpointKey('c', "rtcp:", fp.Dst)
	case *AcctFootprint:
		return fp.Txn.CallID
	case *RawFootprint:
		return x.endpointKey('w', "raw:", fp.Dst)
	default:
		return ""
	}
}

// sessionKeyView is SessionKey for a frame view — the hot-path form: the
// fallback keys come from the intern table, so a steady media stream
// computes its key with zero allocations.
func (x *sessionIndex) sessionKeyView(v *FrameView) string {
	switch v.Proto {
	case ProtoSIP:
		return v.Msg.CallID()
	case ProtoRTP:
		if s := x.flowSession(v.Src, v.Dst); s != "" {
			return s
		}
		return x.endpointKey('r', "rtp:", v.Dst)
	case ProtoRTCP:
		if s := x.rtcpFlowSession(v.Src, v.Dst); s != "" {
			return s
		}
		return x.endpointKey('c', "rtcp:", v.Dst)
	case ProtoAccounting:
		return v.Txn.CallID
	case ProtoOther:
		return x.endpointKey('w', "raw:", v.Dst)
	default:
		return ""
	}
}

// flowSession maps a media flow to the SIP session that negotiated either
// endpoint. Sessions whose media is still unknown (zero-valued) never
// match. Consecutive calls frequently renegotiate the same media ports,
// so among candidates the live (not torn down), most recently active
// session wins; ties break on the session id for determinism.
func (x *sessionIndex) flowSession(src, dst netip.AddrPort) string {
	if x.byMedia != nil {
		var best *sessionState
		var bestID string
		for _, st := range x.byMedia[dst] {
			if best == nil || flowSessionLess(best, bestID, st, st.callID) {
				best, bestID = st, st.callID
			}
		}
		for _, st := range x.byMedia[src] {
			if best == nil || flowSessionLess(best, bestID, st, st.callID) {
				best, bestID = st, st.callID
			}
		}
		return bestID
	}
	match := func(negotiated, ep netip.AddrPort) bool {
		return negotiated.IsValid() && ep.IsValid() && negotiated == ep
	}
	var bestID string
	var best *sessionState
	for id, st := range x.sessions {
		if !(match(st.callerMedia, dst) || match(st.calleeMedia, dst) ||
			match(st.callerMedia, src) || match(st.calleeMedia, src)) {
			continue
		}
		if best == nil || flowSessionLess(best, bestID, st, id) {
			best, bestID = st, id
		}
	}
	return bestID
}

// flowSessionLess reports whether candidate (b, bID) should replace the
// current best (a, aID) when attributing a media flow.
func flowSessionLess(a *sessionState, aID string, b *sessionState, bID string) bool {
	// Live sessions outrank torn-down ones: an old call's BYE must not
	// capture the media of the call that replaced it (it still matches
	// within its own monitoring window via lastSeen recency below).
	aLive, bLive := !a.byeSeen, !b.byeSeen
	if aLive != bLive {
		return bLive
	}
	if a.lastSeen != b.lastSeen {
		return b.lastSeen > a.lastSeen
	}
	return bID > aID
}

// rtcpFlowSession maps an RTCP flow (media port + 1 by convention) to its
// session.
func (x *sessionIndex) rtcpFlowSession(src, dst netip.AddrPort) string {
	down := func(ap netip.AddrPort) netip.AddrPort {
		if !ap.IsValid() || ap.Port() == 0 {
			return ap
		}
		return netip.AddrPortFrom(ap.Addr(), ap.Port()-1)
	}
	return x.flowSession(down(src), down(dst))
}

// mediaDstSession maps a destination media endpoint to its session,
// picking the best candidate under flowSessionLess so the answer does not
// depend on map iteration order.
func (x *sessionIndex) mediaDstSession(dst netip.AddrPort) string {
	if !dst.IsValid() {
		return ""
	}
	if x.byMedia != nil {
		var best *sessionState
		var bestID string
		for _, st := range x.byMedia[dst] {
			if best == nil || flowSessionLess(best, bestID, st, st.callID) {
				best, bestID = st, st.callID
			}
		}
		return bestID
	}
	var bestID string
	var best *sessionState
	for id, st := range x.sessions {
		if st.callerMedia != dst && st.calleeMedia != dst {
			continue
		}
		if best == nil || flowSessionLess(best, bestID, st, id) {
			best, bestID = st, id
		}
	}
	return bestID
}

// sipOutcome reports which attribution-relevant transitions one SIP
// sighting caused, plus the parsed fields both consumers need. The
// generator turns it into events; the sharded router uses it to maintain
// the routing directory and replicate cross-session state.
type sipOutcome struct {
	from, to sip.Address
	fromToOK bool // request From/To parsed (requests only)
	cseq     sip.CSeq
	cseqOK   bool // response CSeq parsed (responses only)

	firstInvite   bool
	reinvite      bool
	reinviteMover string
	reinviteOld   netip.AddrPort
	firstBye      bool
	registered    bool       // REGISTER request recorded in pendingReg
	regOK         bool       // 200 matched a pending registration
	regAOR        string     // AOR of the matched registration
	bindingIP     netip.Addr // contact IP of the 200, when it parsed
	established   bool       // session became established on this message
}

// applySIP folds one SIP sighting into the session table and reports what
// changed. This is the single place dialog state transitions happen; it
// must stay free of event construction so the router can replay it
// without an EventGenerator.
func (x *sessionIndex) applySIP(m *sip.Message, at time.Duration, src netip.AddrPort) (*sessionState, sipOutcome) {
	st := x.core(m.CallID())
	var out sipOutcome
	if m.IsRequest() {
		from, errF := m.From()
		to, errT := m.To()
		if errF != nil || errT != nil {
			return st, out
		}
		out.from, out.to, out.fromToOK = from, to, true
		switch m.Method {
		case sip.MethodRegister:
			st.isRegistration = true
			x.pendingReg[st.callID] = to.URI.AOR()
			out.registered = true
		case sip.MethodInvite:
			if to.Tag() == "" {
				// Dialog-forming INVITE.
				if st.callerAOR == "" {
					st.callerAOR = from.URI.AOR()
					st.calleeAOR = to.URI.AOR()
					st.callerTag = from.Tag()
					st.inviteSrcIP = src.Addr()
					if media, ok := mediaFromBody(m); ok {
						x.setCallerMedia(st, media)
					}
					out.firstInvite = true
				}
				return st, out
			}
			// Re-INVITE: someone claims to be moving their media.
			cseq, err := m.CSeq()
			if err != nil || cseq.Seq <= st.lastReinviteSeq {
				return st, out // duplicate sighting (e.g. the proxy-relayed copy)
			}
			st.lastReinviteSeq = cseq.Seq
			var oldMedia netip.AddrPort
			if from.Tag() == st.callerTag {
				oldMedia = st.callerMedia
				if media, ok := mediaFromBody(m); ok {
					x.setCallerMedia(st, media)
				}
			} else {
				oldMedia = st.calleeMedia
				if media, ok := mediaFromBody(m); ok {
					x.setCalleeMedia(st, media)
				}
			}
			st.reinviteSeen = true
			st.reinviteAt = at
			st.reinviteOldMedia = oldMedia
			out.reinvite = true
			out.reinviteMover = from.URI.AOR()
			out.reinviteOld = oldMedia
		case sip.MethodBye:
			if st.byeSeen {
				return st, out // duplicate sighting
			}
			st.byeSeen = true
			st.byeAt = at
			// Which party claims to be hanging up? Match by tag, falling back
			// to AOR for dialogs whose caller tag we never learned.
			switch {
			case from.Tag() != "" && from.Tag() == st.callerTag, from.URI.AOR() == st.callerAOR:
				st.byeFromMedia = st.callerMedia
			default:
				st.byeFromMedia = st.calleeMedia
			}
			out.firstBye = true
		}
		return st, out
	}
	cseq, err := m.CSeq()
	if err != nil {
		return st, out
	}
	out.cseq, out.cseqOK = cseq, true
	switch {
	case m.StatusCode == sip.StatusOK && cseq.Method == sip.MethodRegister:
		if aor, ok := x.pendingReg[st.callID]; ok {
			out.regOK = true
			out.regAOR = aor
			if contact, err := m.Contact(); err == nil {
				if ip, err2 := netip.ParseAddr(contact.URI.Host); err2 == nil {
					out.bindingIP = ip
				}
			}
		}
	case m.StatusCode == sip.StatusOK && cseq.Method == sip.MethodInvite:
		if to, err := m.To(); err == nil && st.calleeTag == "" {
			st.calleeTag = to.Tag()
		}
		if media, ok := mediaFromBody(m); ok && !st.established {
			x.setCalleeMedia(st, media)
		}
		if !st.established && st.callerAOR != "" {
			st.established = true
			out.established = true
		}
	}
	return st, out
}

// RouteHints carries per-frame verdicts the sharded router pre-computed in
// global arrival order. A shard's EventGenerator consumes them instead of
// its own cross-session maps, which is how state that spans sessions (RTP
// sequence continuity per endpoint, IM source history per sender) stays
// exactly serial-equivalent even though frames are processed on many
// shards. The zero value means "no hints": the generator falls back to
// its local state, which is the serial engine's behavior.
type RouteHints struct {
	// Session overrides media-flow attribution for RTP/RTCP footprints and
	// the garbage-event session for raw traffic on an RTP port. Empty
	// means attribute locally.
	Session string
	// HasSeq indicates Seq carries the sequence-continuity verdict for an
	// RTP footprint.
	HasSeq bool
	Seq    SeqVerdict
	// HasIM indicates IM carries the source-stability verdict for a SIP
	// MESSAGE footprint.
	HasIM bool
	IM    IMVerdict
}

// SeqVerdict is the router's RTP sequence-continuity decision for one
// packet, computed against the globally ordered per-endpoint tracker.
type SeqVerdict struct {
	NewFlow bool   // first packet seen toward this endpoint
	Jump    bool   // discontinuity beyond the threshold
	Prev    uint16 // previous sequence number (valid when the tracker was primed)
	// Activity marks the packet as an RTP activity heartbeat: the first
	// packet toward the endpoint, or the first after RTPActivityEvery has
	// elapsed since the last heartbeat. Always false when
	// GenConfig.RTPActivityEvery is 0 (the default).
	Activity bool
}

// IMVerdict is the router's IM source-stability decision for one MESSAGE.
type IMVerdict struct {
	Mismatch bool       // source differs from recent history within the period
	PrevIP   netip.Addr // the remembered source (valid when Mismatch)
}
