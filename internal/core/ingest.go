package core

// The parallel ingest front end for ShardedEngine.
//
// With a single router goroutine, every frame's Ethernet/IPv4/UDP decode
// and protocol peek (SIP parse, RTP/RTCP header peek, accounting parse)
// runs under the routing lock — the ingest bottleneck that flattens
// shard scaling. The ingest tier splits that work in two:
//
//	HandleFrame ──▶ feeder ──▶ lane 0 ┐
//	               (deals 64-  lane 1 ├──▶ sequencer ──▶ shard queues
//	                frame      …      │   (arrival-order
//	                blocks     lane N ┘    stateful routing)
//	                round-robin)
//
//   - N decode lanes each own a SIP parser and RTP/RTCP peek scratch and
//     run the *stateless* per-frame work — the expensive part — fully in
//     parallel, summarizing each frame into a small digest.
//   - One sequencer consumes the digest batches in the exact order the
//     feeder dealt them and replays only the *stateful* remainder
//     (directory transitions, hinter verdicts, sticky-key pinning, shard
//     handoff) under the routing lock, batch-at-a-time.
//
// Determinism argument: the feeder deals whole batches to lanes in strict
// rotation while holding feedMu, so the global batch order is the arrival
// order. Each lane is FIFO, and the sequencer reads lane outputs in the
// same strict rotation, so it observes batches — and therefore frames —
// in exactly the order HandleFrame accepted them. All order-sensitive
// state (session directory, reassembler clocks, hinter correlators,
// sticky keys, frame indices and merge tags) is touched only by the
// sequencer, single-threaded, so the routing decisions are byte-for-byte
// the decisions the synchronous router would have made. The differential
// tests in ingest_diff_test.go hold every (ingesters × shards) point to
// byte-identical output with the serial engine.
//
// The only work a lane performs against shared state is claimPortOf,
// whose claimPort implementations are pure functions of the port numbers
// (see correlator.go) — safe to call concurrently with the sequencer.
//
// Deadlock freedom: the stages form a DAG (feeder → lane.in → lane.out →
// sequencer → shard queues) with every edge a bounded channel and no
// back-edges; the batch pool's free list is refilled by the sequencer,
// which never blocks on the feeder. Backpressure propagates cleanly:
// a full shard queue stalls the sequencer, then the lanes, then
// HandleFrame — exactly the synchronous router's behavior.
//
// Steady-state frames allocate nothing: batches come from a fixed
// recycled pool, digests are written in place, and lane scratch (parser,
// peek views) is lane-owned. TestSteadyStateAllocs holds the RTP/RTCP
// path with ingest lanes to 0 allocs/op.

import (
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"scidive/internal/accounting"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sip"
)

const (
	// ingBatchSize frames are dealt to a lane per rotation turn. Matches
	// shardBatchSize so one ingest batch amortizes the routing lock the
	// same way a shard batch amortizes a queue send.
	ingBatchSize = 64
	// ingQueueDepth bounds each lane's input and output channels.
	ingQueueDepth = 2
)

// ingDigestKind says how far a lane got with a frame, which is exactly
// what the sequencer must replay to keep the router's clocks and state
// serial-identical.
type ingDigestKind uint8

const (
	// ingDrop: dropped before IPv4 decode (bad Ethernet/IPv4 framing).
	// The synchronous router returns before touching the reassembler, so
	// the sequencer advances nothing.
	ingDrop ingDigestKind = iota
	// ingClock: dropped after IPv4 decode (non-UDP protocol, bad UDP
	// framing, or an unclaimed port). The synchronous router advanced the
	// reassembly clocks first, so the sequencer does the same.
	ingClock
	// ingFrag: an IPv4 fragment. Reassembly is stateful, so the
	// sequencer replays the whole frame through routeLocked.
	ingFrag
	// ingStream: a TCP segment. Stream transports are stateful end to end
	// (reassembly cursors, framing buffers, flow teardown), so the
	// sequencer replays the whole frame through routeLocked like a
	// fragment.
	ingStream
	// Claimed-port digests: the lane pre-decoded the protocol payload;
	// ok records whether the parse/peek succeeded.
	ingSIP
	ingAcct
	ingRTP
	ingRTCP
)

// ingDigest is one frame's decode summary, written in place by a lane
// and consumed once by the sequencer.
type ingDigest struct {
	kind     ingDigestKind
	ok       bool
	at       time.Duration
	frame    []byte
	src, dst netip.AddrPort
	seq      uint16 // RTP sequence number (ingRTP, ok)
	msg      int    // index into the batch's SIP message slots (ingSIP)
	callID   string // accounting Call-ID (ingAcct, ok)
	start    bool   // accounting START transaction (ingAcct, ok)
}

// ingBatch carries ingBatchSize consecutive frames from the feeder
// through one lane to the sequencer. SIP messages are parsed into the
// batch's own slots (one per SIP frame); the parsed views alias the
// retained frames, which outlive the batch's trip through the sequencer.
type ingBatch struct {
	lane int
	n    int
	nmsg int
	dig  [ingBatchSize]ingDigest
	msgs [ingBatchSize]sip.Message
}

// reset clears the frame references of a consumed batch before it
// returns to the free pool. The SIP message slots keep their internal
// buffers (that reuse is what makes lane parsing cheap), mirroring the
// synchronous router's single scratch message.
func (b *ingBatch) reset() {
	clear(b.dig[:b.n])
	b.n, b.nmsg = 0, 0
}

// ingMsg is one unit on a lane's channels: a digest batch, or a drain
// marker the sequencer acks by closing it.
type ingMsg struct {
	batch  *ingBatch
	marker chan struct{}
}

// ingLane is one decode worker: a goroutine with private parse scratch,
// fed batches over in, forwarding them decoded over out.
type ingLane struct {
	owner   *ShardedEngine
	in      chan ingMsg
	out     chan ingMsg
	parser  *sip.Parser
	rtpHdr  rtp.HeaderView
	rtcpCmp rtp.CompoundView

	fed       atomic.Uint64
	decoded   atomic.Uint64
	sequenced atomic.Uint64
}

// ingestTier owns the decode lanes and the sequencer.
type ingestTier struct {
	owner *ShardedEngine
	lanes []*ingLane

	feedMu sync.Mutex // serializes feeding: arrival order is feed order
	closed bool
	fill   *ingBatch // partially filled batch not yet dealt to a lane
	rot    int       // next lane in the deal rotation

	free    chan *ingBatch // fixed recycled batch pool
	seqDone chan struct{}
}

func newIngestTier(s *ShardedEngine, n int) *ingestTier {
	t := &ingestTier{
		owner:   s,
		lanes:   make([]*ingLane, n),
		seqDone: make(chan struct{}),
	}
	// Fixed pool: every batch that can be in flight at once (per lane:
	// in-queue, out-queue, one being decoded) plus the feeder's fill
	// batch and the sequencer's current batch, with one spare so the
	// feeder rarely waits.
	poolSize := n*(2*ingQueueDepth+1) + 3
	t.free = make(chan *ingBatch, poolSize)
	for i := 0; i < poolSize; i++ {
		t.free <- new(ingBatch)
	}
	for i := range t.lanes {
		l := &ingLane{
			owner:  s,
			in:     make(chan ingMsg, ingQueueDepth),
			out:    make(chan ingMsg, ingQueueDepth),
			parser: sip.NewParser(),
		}
		t.lanes[i] = l
		go l.run()
	}
	go t.sequence()
	return t
}

// feed accepts one frame in arrival order. It appends to the fill batch
// and deals the batch to the next lane in rotation when full. Blocking
// on a full lane (or an empty pool) is the backpressure path.
func (t *ingestTier) feed(at time.Duration, frame []byte) {
	t.feedMu.Lock()
	if t.closed {
		t.feedMu.Unlock()
		t.owner.framesAfterClose.Add(1)
		return
	}
	b := t.fill
	if b == nil {
		b = <-t.free
		t.fill = b
	}
	b.dig[b.n] = ingDigest{at: at, frame: frame}
	b.n++
	if b.n == ingBatchSize {
		t.fill = nil
		t.dealLocked(b)
	}
	t.feedMu.Unlock()
}

// dealLocked hands a filled batch to the next lane in rotation. Called
// with feedMu held: the rotation position is the batch's global order.
func (t *ingestTier) dealLocked(b *ingBatch) {
	lane := t.rot % len(t.lanes)
	t.rot++
	b.lane = lane
	t.lanes[lane].fed.Add(uint64(b.n))
	t.lanes[lane].in <- ingMsg{batch: b}
}

// drain flushes the fill batch and sends one marker through every lane
// in rotation, then waits until the sequencer has consumed the last
// marker — at which point every frame fed before the call has been
// sequenced into its shard queue. Safe to call concurrently; no-op after
// close.
func (t *ingestTier) drain() {
	t.feedMu.Lock()
	if t.closed {
		t.feedMu.Unlock()
		return
	}
	if t.fill != nil && t.fill.n > 0 {
		b := t.fill
		t.fill = nil
		t.dealLocked(b)
	}
	// One marker per lane, dealt through the same rotation as data
	// batches; only the rotation's last marker carries the ack channel
	// (the sequencer reaches it strictly after the other N-1).
	done := make(chan struct{})
	for i := 0; i < len(t.lanes); i++ {
		var m ingMsg
		if i == len(t.lanes)-1 {
			m.marker = done
		}
		lane := t.rot % len(t.lanes)
		t.rot++
		t.lanes[lane].in <- m
	}
	t.feedMu.Unlock()
	// The sequencer closes done when it consumes the rotation's last
	// marker; per-lane FIFO plus strict rotation mean everything dealt
	// before the markers has been sequenced by then.
	<-done
}

// close drains in-flight work and stops the lane and sequencer
// goroutines. Subsequent feeds count as after-close. Idempotent.
func (t *ingestTier) close() {
	t.feedMu.Lock()
	if t.closed {
		t.feedMu.Unlock()
		return
	}
	t.closed = true
	if t.fill != nil && t.fill.n > 0 {
		b := t.fill
		t.fill = nil
		t.dealLocked(b)
	}
	for _, l := range t.lanes {
		close(l.in)
	}
	t.feedMu.Unlock()
	<-t.seqDone
}

func (l *ingLane) run() {
	defer close(l.out)
	for m := range l.in {
		if b := m.batch; b != nil {
			for i := 0; i < b.n; i++ {
				l.decodeOne(b, &b.dig[i])
			}
			l.decoded.Add(uint64(b.n))
		}
		l.out <- m
	}
}

// decodeOne runs the stateless half of routeLocked/classifyLocked for
// one frame: framing decode, port classification and protocol peek. Each
// early return mirrors a drop (or clock-advance) point of the
// synchronous path; the digest kind tells the sequencer which one.
func (l *ingLane) decodeOne(b *ingBatch, d *ingDigest) {
	ef, err := packet.UnmarshalEthernet(d.frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		d.kind = ingDrop
		return
	}
	iph, ipPayload, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		d.kind = ingDrop
		return
	}
	if iph.FragOffset != 0 || iph.MoreFragments() {
		d.kind = ingFrag
		return
	}
	if iph.Protocol == packet.ProtoTCP {
		d.kind = ingStream
		return
	}
	if iph.Protocol != packet.ProtoUDP {
		d.kind = ingClock
		return
	}
	uh, udpPayload, err := packet.PeekUDP(iph.Src, iph.Dst, ipPayload)
	if err != nil {
		d.kind = ingClock
		return
	}
	d.src = netip.AddrPortFrom(iph.Src, uh.SrcPort)
	d.dst = netip.AddrPortFrom(iph.Dst, uh.DstPort)
	proto, claimed := claimPortOf(l.owner.correlators, uh.SrcPort, uh.DstPort)
	if !claimed {
		d.kind = ingClock
		return
	}
	switch proto {
	case ProtoSIP:
		d.kind = ingSIP
		d.msg = b.nmsg
		d.ok = l.parser.ParseInto(udpPayload, &b.msgs[b.nmsg]) == nil
		b.nmsg++
		if !d.ok {
			l.reclassify(b, d, ProtoSIP, udpPayload)
		}
	case ProtoAccounting:
		d.kind = ingAcct
		txn, perr := accounting.ParseTxn(udpPayload)
		d.ok = perr == nil
		d.callID = txn.CallID
		d.start = txn.Kind == accounting.TxnStart
		if !d.ok {
			l.reclassify(b, d, ProtoAccounting, udpPayload)
		}
	case ProtoRTP:
		d.kind = ingRTP
		d.ok = rtp.PeekHeader(udpPayload, &l.rtpHdr) == nil
		d.seq = l.rtpHdr.Seq
		if !d.ok {
			l.reclassify(b, d, ProtoRTP, udpPayload)
		}
	case ProtoRTCP:
		d.kind = ingRTCP
		d.ok = rtp.PeekCompound(udpPayload, &l.rtcpCmp) == nil
		if !d.ok {
			l.reclassify(b, d, ProtoRTCP, udpPayload)
		}
	default:
		// A claimed port with no routing rule ships nowhere — the
		// synchronous classifyLocked returns ship=false after the clocks
		// advanced.
		d.kind = ingClock
	}
}

// reclassify runs the content-confirmation ladder (classify.go) after a
// claimed decode failed, rewriting the digest to the content protocol's
// kind (with ok=true) when a rung's confirmation and full decode both
// accept the payload. Like claimPortOf, the ladder is stateless — the
// confirm functions and decoders touch only lane-owned scratch — so
// lanes reclassify in parallel and the sequencer then routes the digest
// exactly as the synchronous router's ladderRouteLocked would have.
// Reclassification toward SIP consumes one of the batch's message slots,
// like a natively claimed SIP frame (at most one slot per frame either
// way: a failed claimed-SIP parse never reclassifies back to SIP).
func (l *ingLane) reclassify(b *ingBatch, d *ingDigest, claimed Protocol, udpPayload []byte) {
	for _, step := range l.owner.ladder {
		if step.proto == claimed || !step.confirm(udpPayload) {
			continue
		}
		switch step.proto {
		case ProtoSIP:
			if l.parser.ParseInto(udpPayload, &b.msgs[b.nmsg]) != nil {
				continue
			}
			d.kind, d.ok, d.msg = ingSIP, true, b.nmsg
			b.nmsg++
			return
		case ProtoRTP:
			if rtp.PeekHeader(udpPayload, &l.rtpHdr) != nil {
				continue
			}
			d.kind, d.ok, d.seq = ingRTP, true, l.rtpHdr.Seq
			return
		case ProtoRTCP:
			if rtp.PeekCompound(udpPayload, &l.rtcpCmp) != nil {
				continue
			}
			d.kind, d.ok = ingRTCP, true
			return
		}
	}
}

// sequence is the single consumer of every lane's output. Reading lanes
// in the same strict rotation the feeder dealt them restores the global
// arrival order; each batch is replayed into the routing path under the
// routing lock, one lock acquisition per 64 frames.
func (t *ingestTier) sequence() {
	defer close(t.seqDone)
	s := t.owner
	for r := 0; ; r++ {
		m, ok := <-t.lanes[r%len(t.lanes)].out
		if !ok {
			// Lanes close in-rotation once the feeder closed their
			// inputs; a closed lane at this rotation slot means nothing
			// was dealt here or later.
			return
		}
		if m.batch == nil {
			if m.marker != nil {
				close(m.marker)
			}
			continue
		}
		b := m.batch
		s.mu.Lock()
		for i := 0; i < b.n; i++ {
			d := &b.dig[i]
			s.frames.Add(1)
			s.frameIdx++
			if s.frameIdx%gcEvery == 0 {
				s.expireLocked(d.at)
			}
			s.sequenceDigestLocked(s.frameIdx, b, d)
		}
		s.mu.Unlock()
		t.lanes[b.lane].sequenced.Add(uint64(b.n))
		b.reset()
		t.free <- b
	}
}

// sequenceDigestLocked replays the stateful remainder of one frame's
// routing: exactly the work routeLocked does after the point the lane's
// digest captured.
func (s *ShardedEngine) sequenceDigestLocked(idx uint64, b *ingBatch, d *ingDigest) {
	switch d.kind {
	case ingDrop:
		return
	case ingFrag, ingStream:
		// Fragments and TCP segments take the full synchronous path:
		// reassembly, group/stream buffering and the eventual handoff are
		// all stateful.
		s.routeLocked(idx, d.at, d.frame)
		return
	}
	// Unfragmented past IPv4 decode: the synchronous path advanced the
	// fragment-group prune and the reassembler's expiry clock (Insert
	// expires first, then returns unfragmented packets untouched).
	s.pruneFragsLocked(d.at)
	s.reasm.Expire(d.at)
	if d.kind == ingClock {
		return
	}
	var routeKey string
	var hints RouteHints
	switch d.kind {
	case ingSIP:
		var m *sip.Message
		if d.ok {
			m = &b.msgs[d.msg]
		}
		routeKey, hints = s.classifySIPMsgLocked(d.at, d.src, d.dst, m)
	case ingAcct:
		routeKey = s.classifyAcctLocked(d.dst, d.callID, d.start, d.ok)
	case ingRTP:
		routeKey, hints = s.classifyRTPSeqLocked(d.at, d.src, d.dst, d.seq, d.ok)
	case ingRTCP:
		routeKey, hints = s.classifyRTCPFlowLocked(d.at, d.src, d.dst, d.ok)
	}
	shard := shardOf(s.resolveRouteLocked(routeKey), len(s.workers))
	s.appendItemLocked(shard, shardItem{kind: itemFrame, idx: idx, at: d.at, frame: d.frame, hints: hints})
}
