package core

import (
	"net/netip"
	"time"

	"scidive/internal/sip"
)

// GenConfig tunes the correlators' stateful checks.
type GenConfig struct {
	// MonitorWindow is "m": how long after a BYE/REINVITE the orphan-flow
	// monitor stays armed (Section 4.3). Default 1s.
	MonitorWindow time.Duration
	// ReinviteGrace delays the REINVITE orphan monitor: a legitimately
	// migrating phone keeps transmitting from its old socket until its
	// re-INVITE transaction completes, so media from the old address is
	// only suspicious after this grace period. Default 250ms.
	ReinviteGrace time.Duration
	// SeqJumpThreshold is the paper's empirically chosen sequence-number
	// discontinuity bound. Default 100.
	SeqJumpThreshold int
	// AuthFloodThreshold is how many 401s one session may draw before the
	// DoS event fires. Default 5.
	AuthFloodThreshold int
	// GuessThreshold is how many distinct challenge responses one session
	// may try before the password-guessing event fires. Default 3.
	GuessThreshold int
	// IMPeriod is how long a sender's source IP is expected to stay
	// stable (the rule's mobility allowance). Default 60s.
	IMPeriod time.Duration
	// DigestPort is the UDP port the cooperative layer's probe→aggregator
	// digest traffic runs on. The control correlator claims it so the
	// IDS's own control plane on a monitored link is classified (and
	// ignored) instead of raising protocol-mismatch/evasion alerts.
	// Default DefaultDigestPort.
	DigestPort uint16
	// RTPActivityEvery, when >0, makes the RTP correlator emit an
	// EvRTPActivity heartbeat at most once per interval per session —
	// the positive media-liveness evidence cross-point rules consume.
	// Default 0 (off), so single-tap event streams are unchanged.
	RTPActivityEvery time.Duration
}

// withDefaults fills zero fields.
func (c GenConfig) withDefaults() GenConfig {
	if c.MonitorWindow == 0 {
		c.MonitorWindow = time.Second
	}
	if c.ReinviteGrace == 0 {
		c.ReinviteGrace = 250 * time.Millisecond
	}
	if c.SeqJumpThreshold == 0 {
		c.SeqJumpThreshold = 100
	}
	if c.AuthFloodThreshold == 0 {
		c.AuthFloodThreshold = 5
	}
	if c.GuessThreshold == 0 {
		c.GuessThreshold = 3
	}
	if c.IMPeriod == 0 {
		c.IMPeriod = 60 * time.Second
	}
	if c.DigestPort == 0 {
		c.DigestPort = DefaultDigestPort
	}
	return c
}

// EventGenerator folds footprints into events. It is a thin dispatcher
// over the ordered correlator registry: per footprint it prepares the
// shared SessionContext (trail filing, session key, the single applySIP
// application), then runs every correlator subscribed to the footprint's
// protocol, concatenating their events in registry order. All protocol
// logic lives in the correlator modules (sip_correlator.go and friends);
// what remains here is session lifecycle plumbing shared by the serial
// engine and every shard.
type EventGenerator struct {
	cfg         GenConfig
	trails      *TrailStore
	ctx         *SessionContext
	correlators []Correlator
	idx         *sessionIndex
	limits      Limits

	// byProto are the per-protocol dispatch lists, precomputed at
	// construction so the per-frame loop never calls Protocols() (which
	// returns a fresh slice — a hidden per-frame allocation in the old
	// dispatcher).
	byProto [ProtoOther + 1][]Correlator

	// dropTrail is the expiry sweep's eviction callback, hoisted to a
	// field so ExpireSessions does not allocate a closure per call.
	dropTrail func(id string)

	// sticky mirrors the sharded router's Call-ID -> routing-key pins
	// (sharded.go classifySIPMsgLocked) on the router's exact lifecycle,
	// so a serial-written portable checkpoint carries the keys a sharded
	// restore needs to colocate cross-dialog state (IM sender sessions,
	// OPTIONS probes). nil on shard-local generators — only the serial
	// engine's own generator mirrors.
	sticky map[string]string

	// sessions, pendingReg, bindings and seqs alias maps inside the
	// context and the correlators; they are kept as fields so state is
	// inspectable without walking the registry.
	sessions   map[string]*sessionState
	pendingReg map[string]string // Call-ID -> AOR awaiting 200
	bindings   map[string]netip.Addr
	seqs       map[netip.AddrPort]*seqTrack
}

// seqOwner is implemented by the correlator owning the sequence trackers
// (for the generator's inspection alias).
type seqOwner interface {
	seqTrackers() map[netip.AddrPort]*seqTrack
}

// NewEventGenerator returns a generator over the default correlator
// registry, storing footprints into trails.
func NewEventGenerator(cfg GenConfig, trails *TrailStore) *EventGenerator {
	return newEventGeneratorFrom(cfg, trails, buildCorrelators(nil, cfg.withDefaults()))
}

// newEventGeneratorFrom wires a generator to already-built (and
// configured) correlator instances; NewEngine shares the instances with
// its distiller's port classification.
func newEventGeneratorFrom(cfg GenConfig, trails *TrailStore, correlators []Correlator) *EventGenerator {
	cfg = cfg.withDefaults()
	ctx := newSessionContext(cfg, trails)
	g := &EventGenerator{
		cfg:         cfg,
		trails:      trails,
		ctx:         ctx,
		correlators: correlators,
		idx:         ctx.idx,
		sessions:    ctx.idx.sessions,
		pendingReg:  ctx.idx.pendingReg,
		bindings:    ctx.bindings,
	}
	for _, c := range correlators {
		if o, ok := c.(establishObserver); ok {
			ctx.observers = append(ctx.observers, o)
		}
		if so, ok := c.(seqOwner); ok {
			g.seqs = so.seqTrackers()
		}
		for p := Protocol(1); p <= ProtoOther; p++ {
			if handlesProto(c, p) {
				g.byProto[p] = append(g.byProto[p], c)
			}
		}
	}
	g.dropTrail = func(id string) {
		g.trails.Drop(id)
		delete(g.sticky, id)
	}
	return g
}

// SetLimits installs the generator's share of the state budget. Must be
// called before traffic flows (NewEngine does).
func (g *EventGenerator) SetLimits(l Limits) {
	g.limits = l
	g.ctx.limits = l
	g.idx.maxSessions = l.MaxSessions
	g.idx.onCapEvict = func(id string) {
		g.trails.Drop(id)
		delete(g.sticky, id)
		g.ctx.evictedSessions++
	}
	for _, c := range g.correlators {
		if b, ok := c.(budgeted); ok {
			b.setLimits(l)
		}
	}
}

// EvictSession drops one session's dialog state, pending registration,
// and trails, reporting whether it existed. The sharded engine broadcasts
// router-side capacity evictions to shards through this.
func (g *EventGenerator) EvictSession(id string) bool {
	st, ok := g.sessions[id]
	if !ok {
		return false
	}
	g.idx.dropSession(id, st)
	g.trails.Drop(id)
	delete(g.sticky, id)
	return true
}

// Bindings returns the registration bindings learned from traffic.
func (g *EventGenerator) Bindings() map[string]netip.Addr {
	out := make(map[string]netip.Addr, len(g.bindings))
	for k, v := range g.bindings {
		out[k] = v
	}
	return out
}

// ApplyBinding installs a registration binding learned elsewhere. The
// sharded router replicates each observed binding to every shard so that
// cross-session checks (billing fraud's registered-location comparison)
// see a consistent directory regardless of which shard learned it.
func (g *EventGenerator) ApplyBinding(aor string, ip netip.Addr) {
	g.ctx.SetBinding(aor, ip)
}

// session returns the state for a Call-ID, creating it if needed.
func (g *EventGenerator) session(callID string) *sessionState {
	return g.idx.core(callID)
}

// touch records session activity for expiry bookkeeping.
func (g *EventGenerator) touch(session string, at time.Duration) {
	g.idx.touch(session, at)
}

// ExpireSessions drops per-session state (and the session's trails) for
// sessions idle longer than timeout as of now, then notifies expirer
// correlators so state tied to the session table's lifetime is swept too.
// It returns how many sessions were evicted. Registration bindings and IM
// histories have their own windows and are kept.
func (g *EventGenerator) ExpireSessions(now, timeout time.Duration) int {
	evicted := g.idx.expire(now, timeout, g.dropTrail)
	if evicted > 0 {
		for _, c := range g.correlators {
			if ex, ok := c.(expirer); ok {
				ex.onExpire(now, len(g.sessions))
			}
		}
	}
	return evicted
}

// ProcessView folds one frame view into the trails and state, appending
// any completed events to evs. This is the steady-state hot path: the
// view, the hints and the event scratch are all caller-owned, so a frame
// that completes no event is processed with zero heap allocations.
func (g *EventGenerator) ProcessView(v *FrameView, h RouteHints, evs *[]Event) {
	g.processView(v, nil, h, evs)
}

func (g *EventGenerator) processView(v *FrameView, boxed Footprint, h RouteHints, evs *[]Event) {
	if !g.ctx.beginFrame(v, boxed, h) {
		return
	}
	defer g.ctx.endFrame(v.At)
	// Routing-key mirror (serial engine only): pin the sticky key on the
	// dialog's first sighting exactly as the sharded router does
	// (classifySIPMsgLocked), so portable checkpoints restore to any
	// shard count with cross-dialog state colocated.
	if g.sticky != nil && v.Proto == ProtoSIP && g.ctx.sipSt != nil {
		if _, ok := g.sticky[g.ctx.sipSt.callID]; !ok {
			routeKey := g.ctx.sipSt.callID
			if v.StreamKey != "" {
				// Stream-carried message: flow affinity wins (the router
				// routes by TCP 4-tuple, see streamFlowKey).
				routeKey = v.StreamKey
			} else {
				for _, c := range g.correlators {
					if rk, isKeyer := c.(sipRouteKeyer); isKeyer {
						if k, claimed := rk.sipRouteKey(v.Msg, g.ctx.sipOut, v.Src); claimed {
							routeKey = k
							break
						}
					}
				}
			}
			g.sticky[g.ctx.sipSt.callID] = routeKey
		}
	}
	p := v.dispatchProto()
	if p < 0 || int(p) >= len(g.byProto) {
		return
	}
	for _, c := range g.byProto[p] {
		c.Process(v, h, g.ctx, evs)
	}
}

// Process folds one boxed footprint into the trails and state, returning
// any events it completes. Compat (allocating) form of ProcessView.
func (g *EventGenerator) Process(f Footprint) []Event {
	return g.ProcessHinted(f, RouteHints{})
}

// ProcessHinted is Process with router-supplied hints. A zero RouteHints
// reproduces the serial engine exactly; non-zero hints replace the local
// cross-session lookups with verdicts the sharded router computed in
// global frame order.
func (g *EventGenerator) ProcessHinted(f Footprint, h RouteHints) []Event {
	var v FrameView
	if !viewOf(f, &v) {
		return nil
	}
	var events []Event
	g.processView(&v, f, h, &events)
	return events
}

// mediaFromBody extracts the audio endpoint from a message's SDP body.
func mediaFromBody(m *sip.Message) (netip.AddrPort, bool) {
	if len(m.Body) == 0 {
		return netip.AddrPort{}, false
	}
	sess, err := parseSDP(m.Body)
	if err != nil {
		return netip.AddrPort{}, false
	}
	return sess.MediaEndpoint("audio")
}
