package core

import "time"

// Limits is the engine's state budget: hard caps on every structure that
// otherwise grows with traffic, so a flood (or a monitor-targeting attack
// in the style of Grashöfer et al.) exhausts a bounded, accounted pool
// instead of the process. A zero value for any cap means unbounded, which
// preserves the pre-budget behavior.
//
// Eviction is deterministic: every cap evicts the least-recently-used (or
// oldest) entry with an explicit identity tie-break, so the serial engine
// and every sharded configuration evict the same victims in the same
// order. Each eviction increments a per-category counter surfaced in
// EngineStats.
type Limits struct {
	// MaxSessions caps per-session dialog state and its trails. The
	// least-recently-touched session is evicted (ties: smaller Call-ID).
	MaxSessions int
	// MaxFragGroups caps incomplete IP fragment streams buffered for
	// reassembly, in the serial distiller and the sharded router alike.
	// The oldest stream is evicted (ties: stream identity order).
	MaxFragGroups int
	// MaxStreams caps tracked TCP stream directions (reassembly buffers
	// plus SIP framing state), in the serial distiller and the sharded
	// router alike. The oldest stream is evicted (ties: stream identity
	// order) and an ids-overload self-alert records the loss.
	MaxStreams int
	// MaxIMHistories caps instant-message source histories (fake-IM
	// detection state). Least-recently-seen AOR|destination evicted.
	MaxIMHistories int
	// MaxSeqTrackers caps RTP sequence-continuity trackers. The tracker
	// with the oldest last packet is evicted (ties: endpoint order).
	MaxSeqTrackers int
	// MaxBindings caps registration bindings (AOR -> contact address).
	// The least-recently-refreshed binding is evicted (ties: AOR order).
	MaxBindings int
	// MaxRetainedAlerts caps the retained alert list; the oldest alert is
	// dropped (its dedup suppression is forgotten with it). In sharded
	// mode the cap applies per shard, so alert retention under caps is
	// NOT serial-equivalent; leave it 0 for differential runs.
	MaxRetainedAlerts int
	// MaxRetainedEvents caps the retained event log (WithEventLog); the
	// oldest event is dropped. Per shard in sharded mode, like alerts.
	MaxRetainedEvents int
	// MaxDigestEvents caps the cooperative exporter's per-probe backlog:
	// events selected for export but not yet flushed into a digest. The
	// oldest pending event is dropped and counted (Exporter.Dropped), so
	// a probe cut off from its aggregator degrades by forgetting the
	// oldest evidence instead of growing without bound.
	MaxDigestEvents int

	// ShedAfter bounds how long the sharded router waits on a full shard
	// queue before shedding the whole batch (counted per shard, raised as
	// an ids-overload self-alert). 0 preserves the blocking send.
	ShedAfter time.Duration
	// StallTimeout makes the sharded engine's watchdog quarantine a shard
	// that has accepted work but made no progress for this long (wall
	// clock). 0 disables the watchdog.
	StallTimeout time.Duration
	// RestartFailedShards restarts a panicking shard with fresh detection
	// state instead of quarantining it for the rest of the run.
	RestartFailedShards bool
}

// shardLocalLimits returns the limits a per-shard engine should enforce
// locally. Router-owned structures are capped once at the router:
// sessions and fragment groups always (the router owns the session
// directory and reassembly), plus whichever caps the budgeted correlators
// declare router-owned (each zeroes its own). Bindings are replicated to
// every shard in identical order, so the per-shard cap evicts identically
// everywhere; retention caps are inherently per-shard.
func shardLocalLimits(correlators []Correlator, l Limits) Limits {
	l.MaxSessions = 0
	l.MaxFragGroups = 0
	l.MaxStreams = 0
	for _, c := range correlators {
		if b, ok := c.(budgeted); ok {
			b.shardLocalLimits(&l)
		}
	}
	return l
}
