package core

import (
	"net/netip"
	"time"

	"scidive/internal/sip"
)

// This file defines the pluggable protocol-correlator architecture that
// replaced the monolithic Event Generator. Each protocol's footprint→event
// correlation lives in its own module implementing Correlator; the Event
// Generator is a thin dispatcher over an ordered registry of them, and the
// Distiller and the ShardedEngine's router derive their port
// classification, routing keys, state budgets and per-frame hints from the
// same registry through the capability interfaces below. Adding a protocol
// means adding one file that implements Correlator (plus whichever
// capabilities it needs) and registering it — no existing module changes
// (see options_scan.go for the worked example, and README.md for the
// walkthrough).

// Correlator is one protocol's footprint→event module. Process receives
// every frame view whose dispatch protocol is listed in Protocols (for
// raw views the port's expected protocol, not ProtoOther) together with
// the router's per-frame hints and the shared cross-protocol
// SessionContext, and appends the events the frame completes to evs — the
// caller-owned scratch slice that makes the steady-state hot path
// allocation-free. Correlators run in registry order; within one frame,
// the event stream is the concatenation of each correlator's appends in
// that order. Events that need the observation attached use
// ctx.Observation(), which boxes the view lazily (only frames that
// actually produce events pay for a Footprint allocation).
type Correlator interface {
	// Name identifies the module (CLI -correlators selection, docs).
	Name() string
	// Protocols lists the footprint protocols this correlator consumes.
	Protocols() []Protocol
	// Process folds one frame view into the correlator's state, appending
	// any completed events to evs.
	Process(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event)
}

// Registration names a correlator constructor. Every pipeline (the serial
// generator, each shard's generator, and the sharded router) builds its
// own private instances from the registered constructors.
type Registration struct {
	Name string
	New  func() Correlator
}

// DefaultCorrelators returns the built-in registry in dispatch order. The
// order is part of the engine's observable behavior: it fixes the event
// order within a frame (e.g. a MESSAGE's bad-format event precedes its
// instant-message events) and the priority of port claims and routing
// keys.
func DefaultCorrelators() []Registration {
	return []Registration{
		// control registers first so the digest port claim outranks the
		// protocol claimers (see control_correlator.go); it emits no
		// events, so its position cannot affect per-frame event order.
		{Name: "control", New: func() Correlator { return newControlCorrelator() }},
		{Name: "sip", New: func() Correlator { return newSIPCorrelator() }},
		{Name: "im", New: func() Correlator { return newIMCorrelator() }},
		{Name: "rtp", New: func() Correlator { return newRTPCorrelator() }},
		{Name: "rtcp", New: func() Correlator { return newRTCPCorrelator() }},
		{Name: "acct", New: func() Correlator { return newAcctCorrelator() }},
		{Name: "options-scan", New: func() Correlator { return newOptionsScanCorrelator() }},
		{Name: "evasion", New: func() Correlator { return newEvasionCorrelator() }},
	}
}

// buildCorrelators instantiates a registry (nil = DefaultCorrelators) and
// configures each instance with the normalized generator config.
func buildCorrelators(regs []Registration, cfg GenConfig) []Correlator {
	if regs == nil {
		regs = DefaultCorrelators()
	}
	out := make([]Correlator, len(regs))
	for i, reg := range regs {
		out[i] = reg.New()
		if c, ok := out[i].(configurable); ok {
			c.configure(cfg)
		}
	}
	return out
}

// --- Capability interfaces ---
//
// A correlator implements only the capabilities it needs; the dispatcher,
// distiller and router probe with type assertions. All capabilities are
// package-internal: correlators live in this package (they share the
// session-state machinery), so nothing outside can or should implement
// them.

// configurable correlators receive the normalized GenConfig once, at
// pipeline construction, before any traffic flows.
type configurable interface {
	configure(cfg GenConfig)
}

// portClaimer correlators claim UDP port ranges for their protocol. The
// Distiller (and the sharded router's frame peek, which must classify
// identically) asks each registered claimer in registry order; the first
// claim wins and selects the protocol decoder. Traffic no correlator
// claims is ignored.
type portClaimer interface {
	claimPort(srcPort, dstPort uint16) (Protocol, bool)
}

// budgeted correlators own capped cross-session state (see Limits). They
// receive the budget before traffic flows, report which of their caps the
// sharded router enforces globally (so shard-local copies run uncapped),
// and fold their eviction counters into stats snapshots. Counters must be
// atomics: the router reads them lock-free while the routing lock is held
// elsewhere.
type budgeted interface {
	setLimits(l Limits)
	shardLocalLimits(l *Limits)
	contributeStats(st *EngineStats)
}

// snapshotter correlators carry private state that must survive a process
// restart, serialized through checkpoint/restore (snapshot.go). The
// protocol is two-phase: snapshotState writes the state deterministically
// (maps in sorted key order), and decodeState reads it back WITHOUT
// mutating the correlator, returning an install closure. The engine runs
// every install only after the whole snapshot has decoded cleanly, so a
// corrupt checkpoint can never leave a correlator half-restored.
// Correlators whose maps are aliased elsewhere (e.g. the RTP trackers the
// generator exposes for inspection) must refill them in place.
type snapshotter interface {
	snapshotState(w *snapWriter)
	decodeState(r *snapReader) (install func(), err error)
}

// stateSharder correlators hold worker-resident cross-session state keyed
// by routing key, and can merge and filter their serialized (snapshotter)
// state across shard boundaries. The portable-snapshot writer merges the
// per-shard blobs into one global blob, and restore filters the global
// blob down to each shard's keep set — the same routing keys sipRouteKey
// pins, so filtered state lands exactly where the router will send its
// traffic. Snapshotter correlators WITHOUT this capability are
// router-authoritative in the sharded engine (their hinter state sees
// every frame in global arrival order): the global blob is the router
// instance's state and restore installs onto the router instance.
type stateSharder interface {
	mergeState(blobs [][]byte) ([]byte, error)
	filterState(blob []byte, keep func(routeKey string) bool) ([]byte, error)
}

// expirer correlators hold state tied to the session table's lifetime and
// are notified after every periodic expiry sweep that evicted something.
type expirer interface {
	onExpire(now time.Duration, sessionsRemaining int)
}

// establishObserver correlators react to a session becoming established
// (the SIP 200-INVITE transition). The dispatcher and the router both
// deliver the notification immediately after applySIP reports it, so
// serial and sharded state move in lockstep.
type establishObserver interface {
	onEstablished(st *sessionState)
}

// sipRouteKeyer correlators override the sharded router's sticky routing
// key for a SIP dialog's first sighting. Returning ok pins the dialog
// (and everything filed under its Call-ID) to shard hash(key) instead of
// hash(Call-ID), which is how a correlator with cross-dialog state keeps
// that state shard-local and serial-equivalent. First claimer in registry
// order wins.
type sipRouteKeyer interface {
	sipRouteKey(m *sip.Message, out sipOutcome, src netip.AddrPort) (string, bool)
}

// sipHinter correlators compute a per-frame verdict for a SIP message at
// the router, in global arrival order, against router-owned state; the
// owning shard's correlator instance consumes the verdict from RouteHints
// instead of its local state.
type sipHinter interface {
	sipHint(at time.Duration, src, dst netip.AddrPort, m *sip.Message, out sipOutcome, h *RouteHints)
}

// rtpHinter is sipHinter's RTP analogue (sequence continuity per
// destination endpoint, which spans sessions and therefore shards).
type rtpHinter interface {
	rtpHint(at time.Duration, dst netip.AddrPort, seq uint16, h *RouteHints)
}

// claimPortOf classifies a datagram against a correlator set, returning
// the first claim in registry order.
func claimPortOf(correlators []Correlator, srcPort, dstPort uint16) (Protocol, bool) {
	for _, c := range correlators {
		if pc, ok := c.(portClaimer); ok {
			if proto, claimed := pc.claimPort(srcPort, dstPort); claimed {
				return proto, true
			}
		}
	}
	return ProtoOther, false
}

// handlesProto reports whether a correlator subscribed to a protocol.
// Called only at generator construction, when the per-protocol dispatch
// lists are precomputed; per-frame dispatch never walks Protocols().
func handlesProto(c Correlator, p Protocol) bool {
	for _, cp := range c.Protocols() {
		if cp == p {
			return true
		}
	}
	return false
}
