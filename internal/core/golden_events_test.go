package core_test

// Golden event streams: the exact []Event each scenario produces through
// the serial engine, pinned to files under testdata/golden_events. The
// correlator decomposition (and any future pipeline refactor) must be
// event-identical to the recorded streams — not merely alert-equivalent —
// or these tests fail with the first diverging event.
//
// Regenerate intentionally with:
//
//	go test ./internal/core -run TestGoldenEventStreams -update
//
// and review the diff like any other behavior change.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scidive/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden event-stream files")

// goldenSeed fixes the traffic for every scenario; it matches the seed the
// differential harness uses so the two suites witness the same streams.
const goldenSeed = 7

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_events", name+".golden")
}

func TestGoldenEventStreams(t *testing.T) {
	for _, name := range experiments.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			frames := scenarioFrames(t, name, goldenSeed)
			_, events, _ := runSerial(frames)
			var b strings.Builder
			for _, ev := range events {
				fmt.Fprintf(&b, "%v|%v|%s|%s\n", ev.At, ev.Type, ev.Session, ev.Detail)
			}
			got := b.String()
			path := goldenPath(name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden stream for %s (run with -update to record): %v", name, err)
			}
			if got == string(want) {
				return
			}
			gotLines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
			wantLines := strings.Split(strings.TrimSuffix(string(want), "\n"), "\n")
			for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
				switch {
				case i >= len(gotLines):
					t.Errorf("event %d missing, want %s", i, wantLines[i])
					return
				case i >= len(wantLines):
					t.Errorf("event %d extra: %s", i, gotLines[i])
					return
				case gotLines[i] != wantLines[i]:
					t.Errorf("event %d:\n got %s\nwant %s", i, gotLines[i], wantLines[i])
					return
				}
			}
		})
	}
}
