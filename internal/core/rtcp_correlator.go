package core

// rtcpCorrelator watches for RTCP BYE packets that lack a corresponding
// SIP BYE: during legitimate teardown the SIP BYE travels alongside the
// RTCP BYE, so an RTCP BYE still unmatched after a grace period is
// forged. The pending state lives in the shared session state; the
// evaluation is driven by subsequent traffic (the surviving party's media
// keeps flowing, so the RTP correlator checks the pending BYE too),
// keeping the engine purely packet-driven.
type rtcpCorrelator struct{}

func newRTCPCorrelator() *rtcpCorrelator { return &rtcpCorrelator{} }

func (c *rtcpCorrelator) Name() string          { return "rtcp" }
func (c *rtcpCorrelator) Protocols() []Protocol { return []Protocol{ProtoRTCP} }

// claimPort claims odd media ports (RTCP by convention).
func (c *rtcpCorrelator) claimPort(srcPort, dstPort uint16) (Protocol, bool) {
	if dstPort >= defaultMediaPortFloor && dstPort%2 == 1 {
		return ProtoRTCP, true
	}
	return ProtoOther, false
}

// contentConfirmer: a well-formed RTCP compound (known packet types,
// lengths tiling the buffer) nominates payloads on non-RTCP ports for
// reclassification (classify.go).
func (c *rtcpCorrelator) contentProto() Protocol             { return ProtoRTCP }
func (c *rtcpCorrelator) confirmContent(payload []byte) bool { return confirmRTCPContent(payload) }

func (c *rtcpCorrelator) Process(v *FrameView, h RouteHints, ctx *SessionContext, evs *[]Event) {
	if v.Proto != ProtoRTCP {
		return
	}
	st, known := ctx.LookupSession(ctx.Session())
	if !known {
		return
	}
	ctx.CheckPendingRTCPBye(st, v.At, evs)
	if v.RTCP.HasBye && !st.byeSeen && !st.rtcpByePending && !st.rtcpByeFired {
		st.rtcpByePending = true
		st.rtcpByeAt = v.At
	}
}
