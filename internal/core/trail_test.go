package core

import (
	"testing"
	"time"
)

func rtpFp(at time.Duration) *RTPFootprint {
	return &RTPFootprint{FootprintBase: FootprintBase{At: at}}
}

func TestTrailAppendAndOrder(t *testing.T) {
	s := NewTrailStore(0)
	tr := s.Get("call-1", ProtoRTP)
	for i := 0; i < 10; i++ {
		tr.Append(rtpFp(time.Duration(i) * time.Millisecond))
	}
	if tr.Len() != 10 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Last().Time() != 9*time.Millisecond {
		t.Errorf("Last at %v", tr.Last().Time())
	}
	fps := tr.Footprints()
	for i := 1; i < len(fps); i++ {
		if fps[i].Time() < fps[i-1].Time() {
			t.Fatal("footprints out of order")
		}
	}
}

func TestTrailBounded(t *testing.T) {
	s := NewTrailStore(5)
	tr := s.Get("call-1", ProtoRTP)
	for i := 0; i < 20; i++ {
		tr.Append(rtpFp(time.Duration(i) * time.Millisecond))
	}
	if tr.Len() != 5 {
		t.Fatalf("bounded trail Len = %d, want 5", tr.Len())
	}
	// The retained footprints are the most recent.
	if got := tr.Footprints()[0].Time(); got != 15*time.Millisecond {
		t.Errorf("oldest retained = %v, want 15ms", got)
	}
}

func TestTrailSince(t *testing.T) {
	s := NewTrailStore(0)
	tr := s.Get("c", ProtoRTP)
	for i := 0; i < 10; i++ {
		tr.Append(rtpFp(time.Duration(i) * time.Second))
	}
	got := tr.Since(6 * time.Second)
	if len(got) != 3 {
		t.Fatalf("Since(6s) = %d footprints, want 3 (7,8,9)", len(got))
	}
	if got[0].Time() != 7*time.Second {
		t.Errorf("first = %v", got[0].Time())
	}
	if n := len(tr.Since(100 * time.Second)); n != 0 {
		t.Errorf("Since(100s) = %d", n)
	}
	if n := len(tr.Since(-time.Second)); n != 10 {
		t.Errorf("Since(-1s) = %d", n)
	}
}

func TestTrailStoreSessionGrouping(t *testing.T) {
	s := NewTrailStore(0)
	s.Get("call-1", ProtoSIP).Append(rtpFp(0))
	s.Get("call-1", ProtoRTP).Append(rtpFp(0))
	s.Get("call-1", ProtoAccounting).Append(rtpFp(0))
	s.Get("call-2", ProtoSIP).Append(rtpFp(0))
	if s.Sessions() != 2 {
		t.Errorf("Sessions = %d", s.Sessions())
	}
	if s.Trails() != 4 {
		t.Errorf("Trails = %d", s.Trails())
	}
	trails := s.SessionTrails("call-1")
	if len(trails) != 3 {
		t.Fatalf("SessionTrails = %d, want 3", len(trails))
	}
	if s.Lookup("call-1", ProtoRTCP) != nil {
		t.Error("Lookup invented a trail")
	}
	s.Drop("call-1")
	if s.Trails() != 1 || s.Sessions() != 1 {
		t.Errorf("after Drop: %v", s)
	}
}

func TestTrailEmptyLast(t *testing.T) {
	s := NewTrailStore(0)
	if s.Get("x", ProtoSIP).Last() != nil {
		t.Error("empty trail Last != nil")
	}
}

func TestProtocolString(t *testing.T) {
	want := map[Protocol]string{
		ProtoSIP: "SIP", ProtoRTP: "RTP", ProtoRTCP: "RTCP",
		ProtoAccounting: "ACCT", ProtoOther: "OTHER", Protocol(0): "UNKNOWN",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}
