package core_test

// Rolling shard restart tests. RollingRestart drains one shard at a
// time at a quiescent-point marker, snapshots its engine, restarts it
// warm from that snapshot, and reconciles the routed == processed + shed
// ledger before moving to the next shard. The contract: a restart sweep
// at any frame boundary is invisible in the output (the differential
// below), every restart is counted in ShardsRestarted, and a fault
// injected mid-drain degrades to the ordinary quarantine/restart path
// without losing accounting.

import (
	"fmt"
	"testing"

	"scidive/internal/chaoscore"
	"scidive/internal/core"
)

// TestRollingRestartContinuity restarts every shard mid-scenario at a
// sweep of frame boundaries and geometries; the output must be
// byte-identical to the uninterrupted serial run, with every restart
// counted.
func TestRollingRestartContinuity(t *testing.T) {
	frames := scenarioFrames(t, "bye", 7)
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	points := killPoints(len(frames), shortKillFractions)
	for _, geo := range []struct{ shards, ingest int }{{2, 1}, {4, 1}, {4, 2}} {
		for _, k := range points {
			label := fmt.Sprintf("shards=%d ingest=%d restart@%d", geo.shards, geo.ingest, k)
			eng := core.NewShardedEngine(core.Config{IngestRouters: geo.ingest}, geo.shards, core.WithEventLog())
			for _, r := range frames[:k] {
				eng.HandleFrame(r.at, r.frame)
			}
			if err := eng.RollingRestart(); err != nil {
				eng.Close()
				t.Fatalf("%s: %v", label, err)
			}
			for _, r := range frames[k:] {
				eng.HandleFrame(r.at, r.frame)
			}
			eng.Flush()
			got := eng.Stats()
			// The uninterrupted baseline has ShardsRestarted == 0; the sweep
			// must account exactly one warm restart per shard and nothing else
			// may differ.
			if got.ShardsRestarted != geo.shards {
				t.Errorf("%s: ShardsRestarted = %d, want %d", label, got.ShardsRestarted, geo.shards)
			}
			got.ShardsRestarted = wantStats.ShardsRestarted
			compareToBaseline(t, label, eng.Alerts(), eng.Events(), got, wantAlerts, wantEvents, wantStats)
			for _, h := range eng.ShardHealth() {
				if h.FramesRouted != h.FramesProcessed+h.FramesShed {
					t.Errorf("%s: shard %d ledger does not reconcile: routed=%d processed=%d shed=%d",
						label, h.Shard, h.FramesRouted, h.FramesProcessed, h.FramesShed)
				}
			}
			eng.Close()
			if t.Failed() {
				return
			}
		}
	}
}

// TestRollingRestartRepeated performs a restart sweep after every
// quarter of the trace — shard state crosses multiple warm restarts —
// and the output must still match the uninterrupted run.
func TestRollingRestartRepeated(t *testing.T) {
	frames := scenarioFrames(t, "rtcpbye", 7)
	wantAlerts, wantEvents, wantStats := runSerialCfg(frames, core.Config{})
	const shards = 4
	eng := core.NewShardedEngine(core.Config{}, shards, core.WithEventLog())
	defer eng.Close()
	points := killPoints(len(frames), []float64{1.0 / 4, 1.0 / 2, 3.0 / 4})
	next := 0
	for i, r := range frames {
		if next < len(points) && i == points[next] {
			next++
			if err := eng.RollingRestart(); err != nil {
				t.Fatalf("sweep at frame %d: %v", i, err)
			}
		}
		eng.HandleFrame(r.at, r.frame)
	}
	eng.Flush()
	got := eng.Stats()
	if want := len(points) * shards; got.ShardsRestarted != want {
		t.Errorf("ShardsRestarted = %d, want %d (%d sweeps × %d shards)", got.ShardsRestarted, want, len(points), shards)
	}
	got.ShardsRestarted = wantStats.ShardsRestarted
	compareToBaseline(t, "repeated rolling restarts", eng.Alerts(), eng.Events(), got,
		wantAlerts, wantEvents, wantStats)
}

// TestRollingRestartMidDrainKill injects a worker panic that fires while
// RollingRestart is draining the shard's queue (parallel ingest keeps
// frames in flight when the sweep begins). The sweep must degrade to the
// ordinary failure path: the panicked shard is quarantined and counted,
// detection on other shards survives, the sweep itself returns without
// deadlock, and every routed frame stays accounted.
func TestRollingRestartMidDrainKill(t *testing.T) {
	frames, session := byeCallSession(t)
	const shards = 2
	victimShard := core.ShardOf(session, shards)
	panicShard := 1 - victimShard

	// Panic a few frames into the panicked shard's stream; with parallel
	// ingest keeping frames queued, the fault lands either while feeding
	// or inside the sweep's per-shard drain — both must degrade cleanly.
	inj := new(chaoscore.ScriptedInjector).PanicAt(panicShard, 3)
	eng := core.NewShardedEngine(core.Config{IngestRouters: 2}, shards,
		core.WithEventLog(), core.WithFaultInjector(inj))
	defer eng.Close()
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
	}
	// No Flush: the sweep's per-shard drain is what forces the queued
	// frames (and the injected fault) through.
	if err := eng.RollingRestart(); err != nil {
		t.Fatalf("rolling restart with mid-drain panic: %v", err)
	}
	eng.Flush()
	health := settleHealth(t, eng)

	alerts := eng.Alerts()
	if _, ok := findAlert(alerts, core.RuleByeAttack); !ok {
		t.Errorf("bye-attack detection on shard %d lost to shard %d's mid-drain panic: %v",
			victimShard, panicShard, alertKeys(alerts))
	}
	if _, ok := findAlert(alerts, core.RuleShardFailure); !ok {
		t.Errorf("no shard-failure alert after mid-drain panic: %v", alertKeys(alerts))
	}
	st := eng.Stats()
	if st.ShardsFailed != 1 {
		t.Errorf("ShardsFailed = %d, want 1", st.ShardsFailed)
	}
	var lost uint64
	for _, h := range health {
		lost += h.FramesRouted - h.FramesProcessed - h.FramesShed
	}
	if lost != 0 {
		t.Errorf("%d frames unaccounted after mid-drain panic", lost)
	}
}

// TestRollingRestartMidDrainKillWithRestart is the same fault under
// Limits.RestartFailedShards: the panicked shard comes back (cold or
// warm) instead of staying quarantined, raising the appropriate
// self-alerts, and the sweep still completes with balanced ledgers.
func TestRollingRestartMidDrainKillWithRestart(t *testing.T) {
	frames, _ := byeCallSession(t)
	const shards = 2
	inj := new(chaoscore.ScriptedInjector).PanicAt(0, 3)
	cfg := core.Config{IngestRouters: 2, Limits: core.Limits{RestartFailedShards: true}}
	eng := core.NewShardedEngine(cfg, shards, core.WithEventLog(), core.WithFaultInjector(inj))
	defer eng.Close()
	for _, r := range frames {
		eng.HandleFrame(r.at, r.frame)
	}
	if err := eng.RollingRestart(); err != nil {
		t.Fatalf("rolling restart with mid-drain panic and restart policy: %v", err)
	}
	eng.Flush()
	health := settleHealth(t, eng)
	st := eng.Stats()
	if st.ShardsFailed != 1 {
		t.Errorf("ShardsFailed = %d, want 1", st.ShardsFailed)
	}
	if st.ShardsRestarted == 0 {
		t.Error("restart policy enabled but ShardsRestarted is 0")
	}
	if _, ok := findAlert(eng.Alerts(), core.RuleShardFailure); !ok {
		t.Errorf("no shard-failure alert: %v", alertKeys(eng.Alerts()))
	}
	var lost uint64
	for _, h := range health {
		lost += h.FramesRouted - h.FramesProcessed - h.FramesShed
	}
	if lost != 0 {
		t.Errorf("%d frames unaccounted", lost)
	}
}
