package core

import "scidive/internal/sdp"

// parseSDP wraps the sdp parser so eventgen stays free of direct imports
// beyond this seam (and tests can reason about one entry point).
func parseSDP(body []byte) (*sdp.Session, error) { return sdp.Parse(body) }
