// Package coop implements the cooperative detection architecture the
// SCIDIVE paper sketches in Sections 3.3 and 6: multiple SCIDIVE
// instances at different observation points that "exchange event objects
// ... to enhance the overall detection accuracy".
//
// The package has two layers:
//
//   - Probe / Aggregator are the cluster-scale building blocks. A Probe
//     wraps any engine's event-export surface (core.Exporter over the
//     OnEvent hook) and ships selected events to one or more aggregators
//     as sequence-numbered digests — real control traffic on the digest
//     port, with retransmission until acknowledged. An Aggregator
//     receives digest streams from many probes, tracks per-probe
//     sequence cursors (duplicates dropped, gaps raised as self-alerts),
//     and feeds the merged stream to a standard core.RuleEngine running
//     cross-point rules (core.CrossPointRuleset) — patterns that qualify
//     steps by observation point and so catch attacks no single probe
//     can see.
//
//   - Detector is the endpoint-resident deployment built from those
//     blocks: one engine per VoIP endpoint fed only with its own host's
//     traffic, a probe exporting the events its user's actions produce,
//     and an aggregator running the cross-point fake-IM rule. The
//     canonical catch is a fake instant message whose source IP is
//     spoofed to the impersonated sender's address: the victim's local
//     rule sees a consistent source, but the impersonated endpoint's
//     detector never observed an outgoing message, and the absence is
//     the evidence.
package coop

import (
	"net/netip"

	"scidive/internal/core"
	"scidive/internal/netsim"
)

// DefaultPort is the UDP control port probes, aggregators and detectors
// exchange digests and acknowledgements on. It aliases
// core.DefaultDigestPort: the engine's control correlator claims the
// same port, so monitored links carrying digest traffic raise nothing.
const DefaultPort = core.DefaultDigestPort

// Bind attaches a probe and/or an aggregator to a host's control port,
// muxing the two control-plane frame kinds: digests go to the
// aggregator, acknowledgements to the probe. Either may be nil. A
// Detector (or any deployment co-locating both on one host) must share
// the port this way; a standalone probe or aggregator can use it too.
func Bind(host *netsim.Host, port uint16, p *Probe, a *Aggregator) error {
	if port == 0 {
		port = DefaultPort
	}
	return host.BindUDP(port, func(src netip.AddrPort, payload []byte) {
		switch {
		case core.IsDigest(payload):
			if a != nil {
				a.HandleDigest(src, payload)
			}
		case core.IsDigestAck(payload):
			if p != nil {
				p.HandleAck(src, payload)
			}
		}
	})
}
