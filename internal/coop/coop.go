// Package coop implements the cooperative detection architecture the
// SCIDIVE paper sketches in Sections 3.3 and 6: SCIDIVE instances
// deployed on each VoIP endpoint that "exchange event objects ... to
// enhance the overall detection accuracy".
//
// Each Detector wraps a core.Engine fed only with its own host's traffic
// (the end-point deployment of Figure 3, unlike the hub-tap appliance),
// and broadcasts a compact summary of selected events to its peers over
// the same network, as real control traffic. A correlator combines local
// observations with peer events to catch attacks a single endpoint
// cannot — the canonical case being a fake instant message whose source
// IP is spoofed to the impersonated sender's address: the victim's local
// rule sees a consistent source, but the impersonated endpoint's detector
// never observed an outgoing message, and the absence is the evidence.
package coop

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"scidive/internal/core"
	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/sip"
)

// DefaultPort is the UDP port detectors exchange events on.
const DefaultPort = 7100

// wire message kinds.
const (
	msgIMSent = "IMSENT" // this endpoint's user sent an instant message
)

// PeerEvent is one event received from a peer detector.
type PeerEvent struct {
	At   time.Duration // sender's virtual timestamp
	Kind string
	From string // claimed sender AOR
	To   string // recipient user
}

// Alert is a cooperative detection result.
type Alert struct {
	At     time.Duration
	Rule   string
	Detail string
}

// Cooperative rule names.
const (
	// RuleCoopFakeIM fires when a received IM has no matching send event
	// from the impersonated sender's detector.
	RuleCoopFakeIM = "coop-fake-im"
	// RuleCoopSelfSpoof fires when a frame claiming this host's own source
	// address arrives inbound on its NIC — on a switched or hub LAN a host
	// never hears its own transmissions echoed, so such a frame is forged.
	RuleCoopSelfSpoof = "coop-self-spoof"
)

// Config configures a Detector.
type Config struct {
	// Host is the endpoint this detector protects.
	Host *netsim.Host
	// User is the AOR of the protected endpoint's user.
	User string
	// Peers are the exchange addresses of the other detectors.
	Peers []netip.AddrPort
	// Port is the local exchange port (default DefaultPort).
	Port uint16
	// CorrelationGrace is how long the correlator waits for a matching
	// peer event before raising an alarm (covers exchange latency).
	// Default 250ms.
	CorrelationGrace time.Duration
	// Engine tunes the wrapped SCIDIVE engine.
	Engine core.Config
}

// Detector is one endpoint-resident SCIDIVE instance with an event
// exchange channel.
type Detector struct {
	cfg    Config
	engine *core.Engine
	sim    *netsim.Simulator

	peerEvents []PeerEvent
	alerts     []Alert
	alerted    map[string]bool

	// Stats.
	ControlSent int // exchange messages transmitted
	ControlRecv int // exchange messages received
}

// NewDetector deploys a detector on cfg.Host, capturing both directions
// of the host's traffic (receive via promiscuous mode, transmit via the
// NIC transmit tap). Frames not addressed to or from the host are
// discarded before the engine (end-point IDS semantics: the paper's
// prototype "does not look into" other hosts' traffic).
func NewDetector(cfg Config) (*Detector, error) {
	if cfg.Host == nil {
		return nil, fmt.Errorf("coop: nil host")
	}
	if cfg.Port == 0 {
		cfg.Port = DefaultPort
	}
	if cfg.CorrelationGrace == 0 {
		cfg.CorrelationGrace = 250 * time.Millisecond
	}
	d := &Detector{
		cfg:     cfg,
		engine:  core.NewEngine(cfg.Engine, core.WithEventLog()),
		sim:     cfg.Host.Sim(),
		alerted: make(map[string]bool),
	}
	cfg.Host.SetPromiscuous(d.handleRxFrame)
	cfg.Host.SetTransmitTap(d.handleTxFrame)
	if err := cfg.Host.BindUDP(cfg.Port, d.handleExchange); err != nil {
		return nil, fmt.Errorf("coop: %w", err)
	}
	return d, nil
}

// Engine exposes the wrapped SCIDIVE engine.
func (d *Detector) Engine() *core.Engine { return d.engine }

// Alerts returns cooperative alerts raised so far.
func (d *Detector) Alerts() []Alert { return append([]Alert(nil), d.alerts...) }

// AlertsFor returns cooperative alerts for one rule.
func (d *Detector) AlertsFor(rule string) []Alert {
	var out []Alert
	for _, a := range d.alerts {
		if a.Rule == rule {
			out = append(out, a)
		}
	}
	return out
}

// PeerEvents returns the events received from peers.
func (d *Detector) PeerEvents() []PeerEvent { return append([]PeerEvent(nil), d.peerEvents...) }

// handleRxFrame processes frames arriving at the NIC.
func (d *Detector) handleRxFrame(frame []byte) {
	iph, ipPayload, ok := d.decodeIP(frame)
	if !ok {
		return
	}
	me := d.cfg.Host.IP()
	if iph.Src != me && iph.Dst != me {
		return // end-point IDS: not our traffic
	}
	if iph.Src == me {
		// Inbound frame claiming our own address: forged. A host never
		// hears its own transmissions echoed back.
		d.raise(RuleCoopSelfSpoof, "self",
			fmt.Sprintf("inbound frame spoofing our address %v (to %v)", me, iph.Dst))
		// Fall through: the traffic still feeds the engine so the local
		// rules can work on it too.
	}
	d.engine.HandleFrame(d.sim.Now(), frame)
	if m := d.sipMessage(iph, ipPayload); m != nil && iph.Dst == me {
		d.observeReceivedIM(m)
	}
}

// handleTxFrame processes frames this host transmits.
func (d *Detector) handleTxFrame(frame []byte) {
	iph, ipPayload, ok := d.decodeIP(frame)
	if !ok {
		return
	}
	d.engine.HandleFrame(d.sim.Now(), frame)
	m := d.sipMessage(iph, ipPayload)
	if m == nil {
		return
	}
	from, err := m.From()
	if err != nil || from.URI.User != d.cfg.User {
		return
	}
	to, err := m.To()
	if err != nil {
		return
	}
	// Our user really sent an instant message: tell the peers.
	d.broadcast(fmt.Sprintf("%s %d %s %s", msgIMSent, d.sim.Now().Nanoseconds(),
		from.URI.AOR(), to.URI.User))
}

// decodeIP decodes the Ethernet/IPv4 layers of a frame.
func (d *Detector) decodeIP(frame []byte) (packet.IPv4Header, []byte, bool) {
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		return packet.IPv4Header{}, nil, false
	}
	iph, ipPayload, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		return packet.IPv4Header{}, nil, false
	}
	return iph, ipPayload, true
}

// sipMessage extracts a SIP MESSAGE request from a decoded IP packet, or
// nil.
func (d *Detector) sipMessage(iph packet.IPv4Header, ipPayload []byte) *sip.Message {
	if iph.Protocol != packet.ProtoUDP {
		return nil
	}
	uh, udpPayload, err := packet.UnmarshalUDP(iph.Src, iph.Dst, ipPayload)
	if err != nil || (uh.SrcPort != sip.DefaultPort && uh.DstPort != sip.DefaultPort) {
		return nil
	}
	m, err := sip.ParseMessage(udpPayload)
	if err != nil || !m.IsRequest() || m.Method != sip.MethodMessage {
		return nil
	}
	return m
}

// observeReceivedIM schedules cross-detector correlation for an incoming
// instant message.
func (d *Detector) observeReceivedIM(m *sip.Message) {
	from, err1 := m.From()
	to, err2 := m.To()
	if err1 != nil || err2 != nil {
		return
	}
	d.scheduleIMCorrelation(from.URI.AOR(), to.URI.User, d.sim.Now())
}

// raise records a deduplicated cooperative alert.
func (d *Detector) raise(rule, key, detail string) {
	k := rule + "|" + key
	if d.alerted[k] {
		return
	}
	d.alerted[k] = true
	d.alerts = append(d.alerts, Alert{At: d.sim.Now(), Rule: rule, Detail: detail})
}

// broadcast sends one control message to every peer.
func (d *Detector) broadcast(line string) {
	for _, peer := range d.cfg.Peers {
		if err := d.cfg.Host.SendUDP(d.cfg.Port, peer, []byte(line)); err == nil {
			d.ControlSent++
		}
	}
}

// handleExchange receives control messages from peers.
func (d *Detector) handleExchange(_ netip.AddrPort, payload []byte) {
	f := strings.Fields(string(payload))
	if len(f) != 4 || f[0] != msgIMSent {
		return
	}
	ns, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return
	}
	d.ControlRecv++
	d.peerEvents = append(d.peerEvents, PeerEvent{
		At: time.Duration(ns), Kind: msgIMSent, From: f[2], To: f[3],
	})
}

// scheduleIMCorrelation waits out the exchange grace, then checks whether
// any peer vouched for the message.
func (d *Detector) scheduleIMCorrelation(fromAOR, toUser string, receivedAt time.Duration) {
	d.sim.Schedule(d.cfg.CorrelationGrace, func() {
		for _, pe := range d.peerEvents {
			if pe.Kind != msgIMSent || pe.From != fromAOR || pe.To != toUser {
				continue
			}
			// A peer saw its user send this message near the receive time.
			if delta := receivedAt - pe.At; delta > -d.cfg.CorrelationGrace && delta < d.cfg.CorrelationGrace {
				return
			}
		}
		d.raise(RuleCoopFakeIM, fromAOR,
			fmt.Sprintf("IM claiming %s received at %v, but %s's detector reported no matching send",
				fromAOR, receivedAt, fromAOR))
	})
}
