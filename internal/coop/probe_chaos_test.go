package coop_test

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"scidive/internal/coop"
	"scidive/internal/core"
	"scidive/internal/netsim"
)

// probeBed stands up a minimal control plane: one probe host, one
// aggregator host, with the probe's link dropping frames at the given
// probability (acks traverse it too).
func probeBed(t *testing.T, seed int64, loss float64) (*netsim.Simulator, *coop.Probe, *coop.Aggregator) {
	t.Helper()
	sim := netsim.NewSimulator(seed)
	net := netsim.NewNetwork(sim)
	probeHost, err := net.AddHost("probe", netip.MustParseAddr("10.0.0.30"))
	if err != nil {
		t.Fatal(err)
	}
	aggHost, err := net.AddHost("agg", netip.MustParseAddr("10.0.0.40"))
	if err != nil {
		t.Fatal(err)
	}
	probeHost.SetLink(netsim.Link{Delay: netsim.Deterministic{D: time.Millisecond}, Loss: loss})
	agg := coop.NewAggregator(coop.AggregatorConfig{Host: aggHost})
	if err := coop.Bind(aggHost, 0, nil, agg); err != nil {
		t.Fatal(err)
	}
	probe, err := coop.NewProbe(coop.ProbeConfig{
		Host:        probeHost,
		Point:       core.PointEdge,
		Aggregators: []netip.AddrPort{netip.AddrPortFrom(aggHost.IP(), coop.DefaultPort)},
		RetryEvery:  100 * time.Millisecond,
		MaxRetries:  40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coop.Bind(probeHost, 0, probe, nil); err != nil {
		t.Fatal(err)
	}
	return sim, probe, agg
}

// feedAndFinish ships n events through the probe, lets the control plane
// settle, and finalizes the merge.
func feedAndFinish(sim *netsim.Simulator, probe *coop.Probe, agg *coop.Aggregator, n int) string {
	for i := 0; i < n; i++ {
		i := i
		sim.Schedule(time.Duration(i)*50*time.Millisecond, func() {
			probe.Observe(core.Event{
				At:      sim.Now(),
				Type:    core.EvSIPBye,
				Session: fmt.Sprintf("call-%d", i),
				Detail:  "hangs up",
			})
		})
	}
	sim.RunUntil(time.Minute)
	alerts := agg.Finalize(time.Minute)
	_ = alerts
	var b strings.Builder
	for _, me := range agg.Alerts() {
		fmt.Fprintf(&b, "%s|%s|%s\n", me.Rule, me.Session, me.Detail)
	}
	// Alerts carry nothing here (single-vantage evidence); fingerprint the
	// merged evidence through the rule engine's view instead: counts.
	st := agg.Stats()
	fmt.Fprintf(&b, "accepted=%d merged=%d\n", st.DigestsAccepted, st.EventsMerged)
	return b.String()
}

// TestProbeRetransmissionSurvivesLoss pins the control plane's delivery
// guarantee: over a link dropping a third of all frames (digests AND
// acks), retransmission still lands every digest exactly once, in
// sequence, with no gap self-alerts — across several loss patterns.
func TestProbeRetransmissionSurvivesLoss(t *testing.T) {
	const events = 20
	sim, probe, agg := probeBed(t, 1, 0)
	want := feedAndFinish(sim, probe, agg, events)
	if st := probe.Stats(); st.Acked != st.Digests || st.GaveUp != 0 {
		t.Fatalf("lossless baseline did not confirm everything: %+v", st)
	}

	for seed := int64(1); seed <= 5; seed++ {
		sim, probe, agg := probeBed(t, seed, 0.33)
		got := feedAndFinish(sim, probe, agg, events)
		if got != want {
			t.Errorf("seed %d: lossy run diverged from lossless:\nwant:\n%s\ngot:\n%s", seed, want, got)
		}
		st := probe.Stats()
		if st.Retries == 0 {
			t.Errorf("seed %d: a 33%% lossy link caused no retransmissions; the chaos is vacuous", seed)
		}
		if st.GaveUp != 0 {
			t.Errorf("seed %d: probe abandoned %d digest(s) despite retries remaining", seed, st.GaveUp)
		}
		if st.Acked != st.Digests {
			t.Errorf("seed %d: %d digests built but %d confirmed", seed, st.Digests, st.Acked)
		}
		if gaps := agg.AlertsFor(coop.RuleCoopDigestGap); len(gaps) != 0 {
			t.Errorf("seed %d: gap self-alerts despite full recovery: %v", seed, gaps)
		}
	}
}
