package coop_test

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/coop"
	"scidive/internal/core"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

// The paper (Section 3.3): "The SCIDIVE architecture has flexibility in
// terms of the placement of its components... it is possible to deploy
// the SCIDIVE IDS only on the SIP client side for detecting anomalies in
// the traffic in and out of the client." These tests verify the
// endpoint-resident deployment detects every Table 1 attack against its
// host, using only the host's own traffic.

// endpointBed deploys a detector on alice only.
func endpointBed(t *testing.T, seed int64) (*scenario.Testbed, *coop.Detector) {
	t.Helper()
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	da, err := coop.NewDetector(coop.Config{
		Host: tb.Net.HostByIP(scenario.AddrClientA), User: "alice",
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb, da
}

func TestEndpointPlacementDetectsFakeIM(t *testing.T) {
	tb, da := endpointBed(t, 20)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "legit") })
	tb.Run(2 * time.Second)
	tb.Sim.Schedule(0, func() {
		_ = tb.Attacker.FakeIM(
			netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort),
			sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
			"fake")
	})
	tb.Run(2 * time.Second)
	if got := da.Engine().AlertsFor(core.RuleFakeIM); len(got) != 1 {
		t.Errorf("endpoint fake-im alerts = %d, want 1", len(got))
	}
}

func TestEndpointPlacementDetectsHijack(t *testing.T) {
	tb, da := endpointBed(t, 21)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("no sniffed dialog")
	}
	tb.Sim.Schedule(0, func() {
		_ = tb.Attacker.Hijack(d, true, netip.AddrPortFrom(scenario.AddrAttacker, 46000))
	})
	tb.Run(2 * time.Second)
	if got := da.Engine().AlertsFor(core.RuleCallHijack); len(got) != 1 {
		t.Errorf("endpoint call-hijack alerts = %d, want 1", len(got))
	}
}

func TestEndpointPlacementDetectsRTPAttack(t *testing.T) {
	tb, da := endpointBed(t, 22)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	tb.Sim.Schedule(0, func() {
		_ = tb.Attacker.InjectGarbageRTP(tb.Alice.RTPAddr(), 15, 172)
	})
	tb.Run(2 * time.Second)
	if got := da.Engine().AlertsFor(core.RuleRTPGarbage); len(got) != 1 {
		t.Errorf("endpoint rtp-garbage alerts = %d, want 1", len(got))
	}
}

func TestEndpointPlacementBenignQuiet(t *testing.T) {
	tb, da := endpointBed(t, 23)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second)
	tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
	tb.Run(3 * time.Second)
	if got := da.Engine().Alerts(); len(got) != 0 {
		t.Errorf("endpoint detector raised %d alerts on benign traffic: %v", len(got), got)
	}
	// The endpoint view is a strict subset of the hub view: it saw only
	// alice's traffic (both directions), not bob<->proxy legs.
	if da.Engine().Stats().Footprints == 0 {
		t.Fatal("endpoint detector saw nothing")
	}
}
