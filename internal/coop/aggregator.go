package coop

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"scidive/internal/core"
	"scidive/internal/netsim"
)

// Cooperative self-alert rule names.
const (
	// RuleCoopDigestGap fires when evidence from a probe is known lost:
	// a hole in the digest sequence at finalization, or a probe
	// reporting events shed under its export budget. Lost evidence is a
	// visible event, never a silent blind spot.
	RuleCoopDigestGap = "coop-digest-gap"
)

// maxBufferedDigests bounds the out-of-order digests held per probe
// while waiting for a retransmission to fill a sequence hole.
const maxBufferedDigests = 4096

// AggregatorConfig configures an Aggregator.
type AggregatorConfig struct {
	// Host is the control-plane transport acknowledgements are sent
	// from. Nil runs the aggregator ack-less (offline merges, replay
	// tools, determinism tests feeding HandleDigest directly).
	Host *netsim.Host
	// Port is the control port acks are sent from (default DefaultPort).
	// The aggregator does not bind it — see Bind.
	Port uint16
	// Rules is the cross-point ruleset (nil = core.CrossPointRuleset()).
	Rules []core.Rule
	// Immediate feeds accepted events to the rule engine as digests
	// arrive (in per-probe sequence order), instead of buffering for the
	// deterministic merge at Finalize. Endpoint detectors use it: their
	// one cross-point rule is an absence pattern whose symmetric grace
	// window is arrival-order independent. Leave it false when
	// byte-identical alert streams across digest arrival orders matter.
	Immediate bool
}

// AggregatorStats counts an aggregator's control-plane activity.
type AggregatorStats struct {
	DigestsAccepted   int // in-sequence digests folded into the stream
	DigestsBuffered   int // out-of-order digests held for a hole
	DuplicatesDropped int // retransmissions of already-accepted digests
	CorruptDropped    int // frames that failed digest decoding
	EventsMerged      int // events accepted across all probes
}

// mergedEvent is one accepted event with its provenance, the sort key of
// the deterministic merge.
type mergedEvent struct {
	ev    core.Event
	point string
	seq   uint64
	idx   int
}

// Aggregator is the fusion side of the cooperative layer: it receives
// digest streams from many probes, tracks per-probe sequence cursors
// (acking what it has, dropping duplicates, buffering past holes), and
// feeds the merged multi-point event stream to a standard rule engine
// running cross-point rules.
type Aggregator struct {
	cfg   AggregatorConfig
	rules *core.RuleEngine

	// nextSeq is the next expected digest sequence per probe point
	// (missing entry = 1).
	nextSeq map[string]uint64
	// buffered holds out-of-order digests per point awaiting the
	// retransmission that fills the hole.
	buffered map[string]map[uint64]*core.Digest
	// probeDropped is the last budget-shed count each probe reported.
	probeDropped map[string]uint64
	// pending accumulates accepted events until Finalize (merge mode).
	pending   []mergedEvent
	finalized bool

	onDigest func(*core.Digest)
	stats    AggregatorStats
}

// NewAggregator builds an aggregator. It does not bind the control port —
// call Bind (or deliver digests to HandleDigest yourself).
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	if cfg.Port == 0 {
		cfg.Port = DefaultPort
	}
	if cfg.Rules == nil {
		cfg.Rules = core.CrossPointRuleset()
	}
	return &Aggregator{
		cfg:          cfg,
		rules:        core.NewRuleEngine(cfg.Rules),
		nextSeq:      make(map[string]uint64),
		buffered:     make(map[string]map[uint64]*core.Digest),
		probeDropped: make(map[string]uint64),
	}
}

// RuleEngine exposes the cross-point matcher (inspection, reload).
func (a *Aggregator) RuleEngine() *core.RuleEngine { return a.rules }

// Stats returns the control-plane counters.
func (a *Aggregator) Stats() AggregatorStats { return a.stats }

// Points lists the probe points the aggregator has accepted digests
// from, in no particular order.
func (a *Aggregator) Points() []string {
	pts := make([]string, 0, len(a.nextSeq))
	for pt := range a.nextSeq {
		pts = append(pts, pt)
	}
	return pts
}

// Alerts returns all cross-point alerts raised so far.
func (a *Aggregator) Alerts() []core.Alert { return a.rules.Alerts() }

// AlertsFor returns cross-point alerts for one rule.
func (a *Aggregator) AlertsFor(rule string) []core.Alert { return a.rules.AlertsFor(rule) }

// OnDigest registers a callback invoked for each accepted digest, after
// its events are merged (detectors use it to mirror peer activity).
func (a *Aggregator) OnDigest(fn func(*core.Digest)) { a.onDigest = fn }

// HandleDigest processes one digest frame from a probe: decode, sequence
// bookkeeping, merge, acknowledge.
func (a *Aggregator) HandleDigest(src netip.AddrPort, payload []byte) {
	d, err := core.DecodeDigest(payload)
	if err != nil {
		a.stats.CorruptDropped++
		return
	}
	next := a.cursor(d.Point)
	switch {
	case d.Seq < next:
		// A retransmission of something already accepted: re-ack so the
		// probe stops resending.
		a.stats.DuplicatesDropped++
		a.ack(src, d.Point)
		return
	case d.Seq > next:
		// Past a hole: hold for the retransmission, re-ack the cursor.
		buf := a.buffered[d.Point]
		if buf == nil {
			buf = make(map[uint64]*core.Digest)
			a.buffered[d.Point] = buf
		}
		if _, held := buf[d.Seq]; !held && len(buf) < maxBufferedDigests {
			buf[d.Seq] = d
			a.stats.DigestsBuffered++
		} else {
			a.stats.DuplicatesDropped++
		}
		a.ack(src, d.Point)
		return
	}
	a.accept(d)
	// The hole may have been the only thing blocking buffered
	// successors.
	for {
		nd, ok := a.buffered[d.Point][a.cursor(d.Point)]
		if !ok {
			break
		}
		delete(a.buffered[d.Point], nd.Seq)
		a.accept(nd)
	}
	a.ack(src, d.Point)
}

// cursor returns the next expected sequence for a point.
func (a *Aggregator) cursor(point string) uint64 {
	if n, ok := a.nextSeq[point]; ok {
		return n
	}
	return 1
}

// accept folds one in-sequence digest into the merged stream.
func (a *Aggregator) accept(d *core.Digest) {
	a.nextSeq[d.Point] = d.Seq + 1
	a.stats.DigestsAccepted++
	if d.Dropped > a.probeDropped[d.Point] {
		shed := d.Dropped - a.probeDropped[d.Point]
		a.probeDropped[d.Point] = d.Dropped
		a.rules.RaiseSynthetic(core.Alert{
			At: a.lastEventAt(d), Rule: RuleCoopDigestGap, Severity: core.SeverityWarning,
			Session: d.Point,
			Detail:  fmt.Sprintf("probe %s shed %d event(s) under its export budget", d.Point, shed),
		})
	}
	for i, ev := range d.Events {
		a.stats.EventsMerged++
		if a.cfg.Immediate {
			a.rules.Feed(ev)
		} else {
			a.pending = append(a.pending, mergedEvent{ev: ev, point: d.Point, seq: d.Seq, idx: i})
		}
	}
	if a.onDigest != nil {
		a.onDigest(d)
	}
}

func (a *Aggregator) lastEventAt(d *core.Digest) time.Duration {
	if len(d.Events) == 0 {
		return 0
	}
	return d.Events[len(d.Events)-1].At
}

// Feed offers one locally observed event (not digest-carried) to the
// cross-point matcher — the endpoint detector's path for its own
// vantage. In merge mode the event is buffered like digest events, under
// its Point with no sequence.
func (a *Aggregator) Feed(ev core.Event) []core.Alert {
	if a.cfg.Immediate {
		return a.rules.Feed(ev)
	}
	a.pending = append(a.pending, mergedEvent{ev: ev, point: ev.Point})
	return nil
}

// Flush advances the rule engine's clock (maturing absence-rule
// pendings) without feeding an event. Immediate-mode owners call it
// after the correlation grace; merge-mode owners get it from Finalize.
func (a *Aggregator) Flush(now time.Duration) []core.Alert { return a.rules.Flush(now) }

// Finalize closes the merge: any sequence holes still open become
// digest-gap self-alerts (the buffered post-hole digests are then
// accepted — late evidence is still evidence), the accepted events are
// sorted into the canonical cross-point order — (time, point, sequence,
// intra-digest index), independent of arrival interleaving — and fed to
// the rule engine, whose clock is finally advanced to now. Calling
// Finalize again is a no-op returning nil.
func (a *Aggregator) Finalize(now time.Duration) []core.Alert {
	if a.finalized {
		return nil
	}
	a.finalized = true
	points := make([]string, 0, len(a.buffered))
	for pt, buf := range a.buffered {
		if len(buf) > 0 {
			points = append(points, pt)
		}
	}
	sort.Strings(points)
	for _, pt := range points {
		buf := a.buffered[pt]
		seqs := make([]uint64, 0, len(buf))
		for s := range buf {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		lost := 0
		cursor := a.cursor(pt)
		for _, s := range seqs {
			lost += int(s - cursor)
			d := buf[s]
			delete(buf, s)
			a.accept(d)
			cursor = s + 1
		}
		a.rules.RaiseSynthetic(core.Alert{
			At: now, Rule: RuleCoopDigestGap, Severity: core.SeverityWarning,
			Session: pt,
			Detail:  fmt.Sprintf("%d digest(s) from probe %s lost (sequence holes at finalization)", lost, pt),
		})
	}
	var fired []core.Alert
	if !a.cfg.Immediate {
		sort.SliceStable(a.pending, func(i, j int) bool {
			x, y := a.pending[i], a.pending[j]
			if x.ev.At != y.ev.At {
				return x.ev.At < y.ev.At
			}
			if x.point != y.point {
				return x.point < y.point
			}
			if x.seq != y.seq {
				return x.seq < y.seq
			}
			return x.idx < y.idx
		})
		for _, me := range a.pending {
			fired = append(fired, a.rules.Feed(me.ev)...)
		}
		a.pending = nil
	}
	fired = append(fired, a.rules.Flush(now)...)
	return fired
}

// ack sends a cumulative acknowledgement for a probe's stream.
func (a *Aggregator) ack(src netip.AddrPort, point string) {
	if a.cfg.Host == nil {
		return
	}
	_ = a.cfg.Host.SendUDP(a.cfg.Port, src, core.EncodeDigestAck(point, a.cursor(point)-1))
}

// --- checkpoint ---

const (
	aggCkptMagic   = "SCAG"
	aggCkptVersion = 1
)

// Snapshot serializes the aggregator's accepted state — per-probe
// sequence cursors, shed counters, the un-finalized merge buffer, and
// the rule engine (partials, pending absences, alerts) — through the
// engine checkpoint codec. Out-of-order digests buffered past a hole
// are transport state and deliberately not captured: after a restore
// the probes' retransmission machinery re-delivers anything unacked.
func (a *Aggregator) Snapshot() []byte {
	e := core.NewWireEncoder(aggCkptMagic, aggCkptVersion)
	points := make([]string, 0, len(a.nextSeq))
	for pt := range a.nextSeq {
		points = append(points, pt)
	}
	sort.Strings(points)
	e.U64(uint64(len(points)))
	for _, pt := range points {
		e.Str(pt)
		e.U64(a.nextSeq[pt])
		e.U64(a.probeDropped[pt])
	}
	e.Bool(a.finalized)
	e.U64(uint64(len(a.pending)))
	for _, me := range a.pending {
		e.Event(me.ev)
		e.Str(me.point)
		e.U64(me.seq)
		e.U64(uint64(me.idx))
	}
	e.Bytes(core.SnapshotRuleEngine(a.rules))
	return e.Finish()
}

// Restore installs a Snapshot into an aggregator configured with the
// same ruleset. Decoding is all-or-nothing: any corruption (or a
// ruleset mismatch) leaves the aggregator untouched.
func (a *Aggregator) Restore(data []byte) error {
	d, err := core.NewWireDecoder(data, aggCkptMagic, aggCkptVersion, "aggregator checkpoint")
	if err != nil {
		return err
	}
	n := int(d.U64())
	nextSeq := make(map[string]uint64, n)
	probeDropped := make(map[string]uint64, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		pt := d.Str()
		nextSeq[pt] = d.U64()
		probeDropped[pt] = d.U64()
	}
	finalized := d.Bool()
	np := int(d.U64())
	var pending []mergedEvent
	for i := 0; i < np && d.Err() == nil; i++ {
		pending = append(pending, mergedEvent{
			ev: d.Event(), point: d.Str(), seq: d.U64(), idx: int(d.U64()),
		})
	}
	reBlob := d.Bytes()
	if err := d.Close("aggregator checkpoint"); err != nil {
		return err
	}
	fresh := core.NewRuleEngine(a.cfg.Rules)
	if err := core.RestoreRuleEngine(fresh, reBlob); err != nil {
		return err
	}
	a.nextSeq = nextSeq
	a.probeDropped = probeDropped
	a.finalized = finalized
	a.pending = pending
	a.buffered = make(map[string]map[uint64]*core.Digest)
	a.rules = fresh
	return nil
}

// WriteCheckpoint atomically persists a Snapshot to path, through the
// same tmp-and-rename path engine checkpoints use.
func (a *Aggregator) WriteCheckpoint(path string) error {
	return core.WriteCheckpoint(path, a.Snapshot())
}
