package coop

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"scidive/internal/core"
	"scidive/internal/netsim"
)

// ProbeConfig configures a Probe.
type ProbeConfig struct {
	// Host is the control-plane transport: digests are sent from this
	// host's control port. Required.
	Host *netsim.Host
	// Point names the observation point the probe reports as (stamped on
	// every exported event). Required.
	Point string
	// Aggregators are the digest destinations (at least one).
	Aggregators []netip.AddrPort
	// Port is the local control port digests are sent from and
	// acknowledgements return to (default DefaultPort). The probe does
	// not bind it — see Bind.
	Port uint16
	// Export lists the event types to export (empty = every type).
	Export []core.EventType
	// Filter, when set, is an additional per-event predicate; events
	// failing it are not exported. Probes use it to ship only evidence
	// they can vouch for (e.g. transmit-provenance events).
	Filter func(core.Event) bool
	// FlushDelay batches exports: the digest is sent this long after the
	// first pending event. 0 sends one digest per exported event
	// immediately — the lowest-latency mode the endpoint detectors use.
	FlushDelay time.Duration
	// RetryEvery is the retransmission cadence for unacknowledged
	// digests (default 500ms). An unacked digest is resent up to
	// MaxRetries times, then abandoned (counted in Stats().GaveUp) so a
	// dead aggregator cannot keep the probe busy forever.
	RetryEvery time.Duration
	// MaxRetries bounds retransmissions per digest per destination
	// (default 8).
	MaxRetries int
	// Limits supplies the export budget (MaxDigestEvents).
	Limits core.Limits
}

// ProbeStats counts a probe's control-plane activity.
type ProbeStats struct {
	Digests int    // digests built (sequence numbers spent)
	Sent    int    // first transmissions (per destination, excluding retries)
	Retries int    // retransmissions of unacked digests
	Acked   int    // digests confirmed by an aggregator
	GaveUp  int    // digests abandoned after MaxRetries
	Dropped uint64 // events shed under the MaxDigestEvents budget
}

// Probe is the export side of the cooperative layer: it observes an
// engine's events (attach via Engine.OnEvent/ShardedEngine.OnEvent, or
// feed Observe directly), selects the exportable ones, and ships them to
// its aggregators as sequence-numbered digests with retransmission until
// acknowledged.
type Probe struct {
	cfg      ProbeConfig
	sim      *netsim.Simulator
	exporter *core.Exporter

	// unacked holds encoded digests awaiting acknowledgement, per
	// destination, keyed by sequence number.
	unacked map[netip.AddrPort]map[uint64][]byte
	// tries counts transmissions per destination and sequence.
	tries      map[netip.AddrPort]map[uint64]int
	flushArmed bool
	retryArmed bool

	stats ProbeStats
}

// NewProbe builds a probe. It does not bind the control port — call Bind
// (or deliver acks to HandleAck yourself) to receive acknowledgements;
// an unbound probe still works, it just retries every digest MaxRetries
// times.
func NewProbe(cfg ProbeConfig) (*Probe, error) {
	if cfg.Host == nil {
		return nil, fmt.Errorf("coop: probe needs a host")
	}
	if cfg.Point == "" {
		return nil, fmt.Errorf("coop: probe needs an observation-point name")
	}
	if len(cfg.Aggregators) == 0 {
		return nil, fmt.Errorf("coop: probe needs at least one aggregator address")
	}
	if cfg.Port == 0 {
		cfg.Port = DefaultPort
	}
	if cfg.RetryEvery == 0 {
		cfg.RetryEvery = 500 * time.Millisecond
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 8
	}
	return &Probe{
		cfg:      cfg,
		sim:      cfg.Host.Sim(),
		exporter: core.NewExporter(cfg.Limits, cfg.Export...),
		unacked:  make(map[netip.AddrPort]map[uint64][]byte),
		tries:    make(map[netip.AddrPort]map[uint64]int),
	}, nil
}

// Point returns the probe's observation-point name.
func (p *Probe) Point() string { return p.cfg.Point }

// Stats returns the control-plane counters.
func (p *Probe) Stats() ProbeStats {
	st := p.stats
	st.Dropped = p.exporter.Dropped()
	return st
}

// Observe offers one event for export (the engine OnEvent hook
// signature). In immediate mode (FlushDelay 0) the digest leaves before
// Observe returns; otherwise the flush timer is armed.
func (p *Probe) Observe(ev core.Event) {
	if p.cfg.Filter != nil && !p.cfg.Filter(ev) {
		return
	}
	before := p.exporter.Pending()
	p.exporter.Observe(ev)
	if p.exporter.Pending() == before {
		return // type-filtered out
	}
	if p.cfg.FlushDelay <= 0 {
		p.flush()
		return
	}
	if before == 0 && !p.flushArmed {
		p.flushArmed = true
		p.sim.Schedule(p.cfg.FlushDelay, func() {
			p.flushArmed = false
			p.flush()
		})
	}
}

// AttachEngine subscribes the probe to an engine's event stream. Source
// is either *core.Engine or *core.ShardedEngine (both expose OnEvent).
func (p *Probe) AttachEngine(src interface{ OnEvent(func(core.Event)) }) {
	src.OnEvent(p.Observe)
}

// flush packages the pending events into a digest and transmits it to
// every aggregator.
func (p *Probe) flush() {
	d := p.exporter.Flush(p.cfg.Point)
	if d == nil {
		return
	}
	d.Dropped = p.exporter.Dropped()
	data := core.EncodeDigest(d)
	p.stats.Digests++
	for _, dst := range p.cfg.Aggregators {
		if err := p.cfg.Host.SendUDP(p.cfg.Port, dst, data); err != nil {
			continue
		}
		p.stats.Sent++
		if p.unacked[dst] == nil {
			p.unacked[dst] = make(map[uint64][]byte)
			p.tries[dst] = make(map[uint64]int)
		}
		p.unacked[dst][d.Seq] = data
		p.tries[dst][d.Seq] = 1
	}
	p.armRetry()
}

// HandleAck processes an aggregator's acknowledgement: every digest up
// to the acked sequence is confirmed for that destination.
func (p *Probe) HandleAck(src netip.AddrPort, payload []byte) {
	point, seq, err := core.DecodeDigestAck(payload)
	if err != nil || point != p.cfg.Point {
		return
	}
	pend := p.unacked[src]
	for s := range pend {
		if s <= seq {
			delete(pend, s)
			delete(p.tries[src], s)
			p.stats.Acked++
		}
	}
}

// armRetry schedules the retransmission sweep if one is not already
// pending. The timer self-cancels when nothing is unacked, so the
// simulator's queue drains once every digest is confirmed (or
// abandoned).
func (p *Probe) armRetry() {
	if p.retryArmed || !p.hasUnacked() {
		return
	}
	p.retryArmed = true
	p.sim.Schedule(p.cfg.RetryEvery, p.retrySweep)
}

func (p *Probe) hasUnacked() bool {
	for _, m := range p.unacked {
		if len(m) > 0 {
			return true
		}
	}
	return false
}

// retrySweep resends every unacked digest in deterministic (destination,
// sequence) order, abandoning digests that exhausted MaxRetries.
func (p *Probe) retrySweep() {
	p.retryArmed = false
	dsts := make([]netip.AddrPort, 0, len(p.unacked))
	for dst := range p.unacked {
		if len(p.unacked[dst]) > 0 {
			dsts = append(dsts, dst)
		}
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i].Compare(dsts[j]) < 0 })
	for _, dst := range dsts {
		seqs := make([]uint64, 0, len(p.unacked[dst]))
		for s := range p.unacked[dst] {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, s := range seqs {
			if p.tries[dst][s] >= p.cfg.MaxRetries {
				delete(p.unacked[dst], s)
				delete(p.tries[dst], s)
				p.stats.GaveUp++
				continue
			}
			if err := p.cfg.Host.SendUDP(p.cfg.Port, dst, p.unacked[dst][s]); err == nil {
				p.stats.Retries++
				p.tries[dst][s]++
			}
		}
	}
	p.armRetry()
}
