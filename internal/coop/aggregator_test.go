package coop

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"time"

	"scidive/internal/core"
)

// mkDigest encodes a synthetic digest frame.
func mkDigest(point string, seq uint64, evs ...core.Event) []byte {
	return core.EncodeDigest(&core.Digest{Point: point, Seq: seq, Events: evs})
}

// probeStreams builds the per-probe digest sequences for a deployment of
// n probes (n ∈ {2,3,5}). The first two vantages stage a BYE-teardown
// split (edge BYE, gateway heartbeats after it), the next two stage a
// registration hijack (the same AOR registering OK from both access
// networks), and the fifth ships unrelated traffic that must not perturb
// the merge.
func probeStreams(n int) map[string][][]byte {
	ev := func(at time.Duration, typ core.EventType, session, detail string) core.Event {
		return core.Event{At: at, Type: typ, Session: session, Detail: detail}
	}
	streams := map[string][][]byte{
		core.PointEdge: {
			mkDigest(core.PointEdge, 1, ev(1*time.Second, core.EvSIPBye, "call-1", "alice hangs up")),
			mkDigest(core.PointEdge, 2, ev(8*time.Second, core.EvSIPBye, "call-2", "bob hangs up")),
		},
		core.PointGateway: {
			mkDigest(core.PointGateway, 1, ev(1500*time.Millisecond, core.EvRTPActivity, "call-1", "media flowing")),
			mkDigest(core.PointGateway, 2, ev(2*time.Second, core.EvRTPActivity, "call-1", "media flowing")),
			mkDigest(core.PointGateway, 3, ev(8500*time.Millisecond, core.EvRTPActivity, "call-2", "media flowing")),
			mkDigest(core.PointGateway, 4, ev(9*time.Second, core.EvRTPActivity, "call-2", "media flowing")),
		},
	}
	if n >= 3 {
		streams[core.PointAccessA] = [][]byte{
			mkDigest(core.PointAccessA, 1, ev(2*time.Second, core.EvSIPRegisterOK, "reg-a", "alice@10.0.0.10")),
		}
	}
	if n >= 5 {
		streams[core.PointAccessB] = [][]byte{
			mkDigest(core.PointAccessB, 1, ev(3*time.Second, core.EvSIPRegisterOK, "reg-b", "alice@10.0.0.10")),
		}
		streams["core"] = [][]byte{
			mkDigest("core", 1, ev(4*time.Second, core.EvSIPInvite, "call-3", "carol -> dave")),
			mkDigest("core", 2, ev(5*time.Second, core.EvSIPInvite, "call-4", "dave -> carol")),
		}
	}
	return streams
}

// flatten lists every frame of every stream in a fixed canonical order.
func flatten(streams map[string][][]byte) [][]byte {
	points := make([]string, 0, len(streams))
	for pt := range streams {
		points = append(points, pt)
	}
	// Deterministic base order before any shuffle.
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			if points[j] < points[i] {
				points[i], points[j] = points[j], points[i]
			}
		}
	}
	var frames [][]byte
	for _, pt := range points {
		frames = append(frames, streams[pt]...)
	}
	return frames
}

// alertFingerprint renders an alert stream byte-comparably.
func alertFingerprint(alerts []core.Alert) string {
	var b strings.Builder
	for _, a := range alerts {
		fmt.Fprintf(&b, "%v|%s|%s|%s|%d\n", a.At, a.Rule, a.Session, a.Detail, a.Count)
	}
	return b.String()
}

// runMerge feeds the frames to a fresh ack-less aggregator in the given
// order and finalizes the merge.
func runMerge(frames [][]byte) *Aggregator {
	agg := NewAggregator(AggregatorConfig{})
	var src netip.AddrPort
	for _, frame := range frames {
		agg.HandleDigest(src, frame)
	}
	agg.Finalize(20 * time.Second)
	return agg
}

// TestAggregatorMergeDeterministic pins the cooperative layer's core
// promise: the cross-point alert stream depends on the digests' content,
// never on their arrival interleaving. Every seeded shuffle of the full
// frame set — across 2-, 3- and 5-probe deployments — must finalize to a
// byte-identical alert stream.
func TestAggregatorMergeDeterministic(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("probes=%d", n), func(t *testing.T) {
			frames := flatten(probeStreams(n))
			base := runMerge(frames)
			want := alertFingerprint(base.Alerts())
			if !strings.Contains(want, core.RuleByeTeardownSplit) {
				t.Fatalf("baseline merge raised no %s:\n%s", core.RuleByeTeardownSplit, want)
			}
			if n >= 5 && !strings.Contains(want, core.RuleRegisterHijackSplit) {
				t.Fatalf("five-probe merge raised no %s:\n%s", core.RuleRegisterHijackSplit, want)
			}
			if strings.Contains(want, RuleCoopDigestGap) {
				t.Fatalf("full delivery must not raise digest-gap alerts:\n%s", want)
			}
			for seed := int64(0); seed < 12; seed++ {
				shuffled := append([][]byte(nil), frames...)
				rand.New(rand.NewSource(seed)).Shuffle(len(shuffled), func(i, j int) {
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				})
				got := alertFingerprint(runMerge(shuffled).Alerts())
				if got != want {
					t.Errorf("seed %d interleaving changed the alert stream:\nwant:\n%s\ngot:\n%s", seed, want, got)
				}
			}
		})
	}
}

// TestAggregatorDuplicatesDropped replays every frame twice (plus one
// triple): retransmissions must be absorbed without double-counting
// evidence or changing the alert stream.
func TestAggregatorDuplicatesDropped(t *testing.T) {
	frames := flatten(probeStreams(2))
	want := alertFingerprint(runMerge(frames).Alerts())

	doubled := append(append([][]byte(nil), frames...), frames...)
	doubled = append(doubled, frames[0])
	agg := runMerge(doubled)
	if got := alertFingerprint(agg.Alerts()); got != want {
		t.Errorf("duplicate delivery changed the alert stream:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if st := agg.Stats(); st.DuplicatesDropped != len(frames)+1 {
		t.Errorf("expected %d duplicates dropped, got %+v", len(frames)+1, st)
	}
}

// TestAggregatorGapSelfAlerts drops one mid-stream digest for good: the
// evidence behind it must still merge (late evidence is still evidence)
// and the hole must surface as a coop-digest-gap self-alert — lost
// evidence is a visible event, never a silent blind spot.
func TestAggregatorGapSelfAlerts(t *testing.T) {
	streams := probeStreams(2)
	gw := streams[core.PointGateway]
	lost := gw[1] // seq 2 never arrives
	streams[core.PointGateway] = [][]byte{gw[0], gw[2], gw[3]}
	agg := runMerge(flatten(streams))

	gaps := agg.AlertsFor(RuleCoopDigestGap)
	if len(gaps) != 1 {
		t.Fatalf("expected one digest-gap alert, got %v", gaps)
	}
	if gaps[0].Session != core.PointGateway || !strings.Contains(gaps[0].Detail, "1 digest(s)") {
		t.Errorf("gap alert does not name the lossy probe/count: %v", gaps[0])
	}
	if st := agg.Stats(); st.DigestsAccepted != 5 || st.DigestsBuffered != 2 {
		t.Errorf("post-hole digests not merged: %+v (lost frame len %d)", st, len(lost))
	}
	// The second call's evidence (all post-hole) still completed its rule.
	found := false
	for _, a := range agg.AlertsFor(core.RuleByeTeardownSplit) {
		if a.Session == "call-2" {
			found = true
		}
	}
	if !found {
		t.Errorf("evidence buffered past the hole did not reach the rules: %v", agg.Alerts())
	}
}

// TestAggregatorBudgetShedAlert pins the other gap source: a probe
// reporting events shed under its export budget raises a self-alert at
// the aggregator naming the shed count.
func TestAggregatorBudgetShedAlert(t *testing.T) {
	agg := NewAggregator(AggregatorConfig{})
	var src netip.AddrPort
	agg.HandleDigest(src, core.EncodeDigest(&core.Digest{
		Point: core.PointEdge, Seq: 1, Dropped: 3,
		Events: []core.Event{{At: time.Second, Type: core.EvSIPBye, Session: "call-1"}},
	}))
	gaps := agg.AlertsFor(RuleCoopDigestGap)
	if len(gaps) != 1 || !strings.Contains(gaps[0].Detail, "shed 3 event(s)") {
		t.Fatalf("expected one budget-shed self-alert, got %v", gaps)
	}
}

// TestAggregatorSnapshotRoundTrip checkpoints an aggregator mid-stream,
// restores it into a fresh one, feeds both the remaining digests, and
// requires byte-identical alert streams — the cooperative layer's state
// survives the same restart discipline as the engines it aggregates.
func TestAggregatorSnapshotRoundTrip(t *testing.T) {
	frames := flatten(probeStreams(5))
	half := len(frames) / 2
	var src netip.AddrPort

	orig := NewAggregator(AggregatorConfig{})
	for _, frame := range frames[:half] {
		orig.HandleDigest(src, frame)
	}
	snap := orig.Snapshot()

	restored := NewAggregator(AggregatorConfig{})
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for _, frame := range frames[half:] {
		orig.HandleDigest(src, frame)
		restored.HandleDigest(src, frame)
	}
	orig.Finalize(20 * time.Second)
	restored.Finalize(20 * time.Second)
	wantA, gotA := alertFingerprint(orig.Alerts()), alertFingerprint(restored.Alerts())
	if wantA != gotA {
		t.Errorf("restored aggregator diverged:\noriginal:\n%s\nrestored:\n%s", wantA, gotA)
	}
	if wantA == "" {
		t.Error("round-trip exercised no alerts; the comparison is vacuous")
	}
}

// TestAggregatorRestoreRejectsCorruption flips bytes across a snapshot:
// every mutation must be rejected whole, leaving the aggregator able to
// process digests as if the restore was never attempted.
func TestAggregatorRestoreRejectsCorruption(t *testing.T) {
	frames := flatten(probeStreams(2))
	orig := NewAggregator(AggregatorConfig{})
	var src netip.AddrPort
	for _, frame := range frames[:3] {
		orig.HandleDigest(src, frame)
	}
	snap := orig.Snapshot()
	rejected := 0
	for i := 0; i < len(snap); i += 7 {
		mut := append([]byte(nil), snap...)
		mut[i] ^= 0x20
		agg := NewAggregator(AggregatorConfig{})
		if err := agg.Restore(mut); err != nil {
			rejected++
			// The failed restore must leave it fully functional.
			for _, frame := range frames {
				agg.HandleDigest(src, frame)
			}
			agg.Finalize(20 * time.Second)
			continue
		}
	}
	if rejected == 0 {
		t.Fatal("no corrupted snapshot was rejected; the checksum is not being checked")
	}
	if err := NewAggregator(AggregatorConfig{}).Restore(snap[:len(snap)-2]); err == nil {
		t.Error("truncated snapshot restored without error")
	}
}
