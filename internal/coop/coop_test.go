package coop_test

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/coop"
	"scidive/internal/core"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

// coopBed deploys cooperating detectors on both clients.
func coopBed(t *testing.T, seed int64) (*scenario.Testbed, *coop.Detector, *coop.Detector) {
	t.Helper()
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	hostA := tb.Net.HostByIP(scenario.AddrClientA)
	hostB := tb.Net.HostByIP(scenario.AddrClientB)
	da, err := coop.NewDetector(coop.Config{
		Host: hostA, User: "alice",
		Peers: []netip.AddrPort{netip.AddrPortFrom(scenario.AddrClientB, coop.DefaultPort)},
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := coop.NewDetector(coop.Config{
		Host: hostB, User: "bob",
		Peers: []netip.AddrPort{netip.AddrPortFrom(scenario.AddrClientA, coop.DefaultPort)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb, da, db
}

func TestBenignIMNoCooperativeAlert(t *testing.T) {
	tb, da, db := coopBed(t, 1)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "hello") })
		tb.Run(2 * time.Second)
	}
	if got := da.Alerts(); len(got) != 0 {
		t.Errorf("alice's detector raised cooperative alerts on benign IMs: %v", got)
	}
	if got := db.Alerts(); len(got) != 0 {
		t.Errorf("bob's detector raised cooperative alerts: %v", got)
	}
	// The exchange itself happened: bob's detector vouched for each IM.
	if db.ControlSent == 0 || len(da.PeerEvents()) == 0 {
		t.Errorf("no event exchange occurred: sent=%d received=%d", db.ControlSent, len(da.PeerEvents()))
	}
}

func TestSpoofedFakeIMEvadesLocalButNotCooperative(t *testing.T) {
	tb, da, _ := coopBed(t, 2)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// Establish bob's legitimate IM pattern first (he messages alice once,
	// relayed by the proxy).
	tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "really bob") })
	tb.Run(2 * time.Second)

	// The strong attack: forged From AND spoofed source IP = bob's own
	// address, sent directly to alice.
	tb.Sim.Schedule(0, func() {
		err := tb.Attacker.FakeIMSpoofed(
			netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort),
			sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
			netip.AddrPortFrom(scenario.AddrClientB, sip.DefaultPort),
			"wire the money",
		)
		if err != nil {
			t.Errorf("FakeIMSpoofed: %v", err)
		}
	})
	tb.Run(2 * time.Second)

	// The victim accepted the message (the attack works at the app layer).
	if got := len(tb.Alice.Messages()); got != 2 {
		t.Fatalf("alice has %d IMs, want 2", got)
	}
	// The paper's concession: the local endpoint rule is blind here,
	// because the source IP matches bob's usual address... but note the
	// legit IM arrived via the proxy, so the local rule may still fire on
	// the path difference. The decisive checks are cooperative:
	coopAlerts := da.AlertsFor(coop.RuleCoopFakeIM)
	if len(coopAlerts) != 1 {
		t.Fatalf("cooperative fake-im alerts = %d, want 1: %v", len(coopAlerts), da.Alerts())
	}
}

func TestSelfSpoofDetection(t *testing.T) {
	tb, _, db := coopBed(t, 3)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// A forged frame with bob's source address arrives at bob's own NIC
	// (the hub broadcasts everything): bob's detector knows it never sent
	// it.
	tb.Sim.Schedule(0, func() {
		_ = tb.Attacker.FakeIMSpoofed(
			netip.AddrPortFrom(scenario.AddrClientB, sip.DefaultPort),
			sip.URI{User: "alice", Host: scenario.AddrProxy.String()},
			netip.AddrPortFrom(scenario.AddrClientB, sip.DefaultPort), // spoof bob to bob
			"echo test",
		)
	})
	tb.Run(time.Second)
	if got := db.AlertsFor(coop.RuleCoopSelfSpoof); len(got) != 1 {
		t.Errorf("self-spoof alerts = %d, want 1: %v", len(got), db.Alerts())
	}
}

func TestEndpointDetectorStillRunsLocalRules(t *testing.T) {
	// The wrapped engine keeps full SCIDIVE capability on the endpoint's
	// own traffic: a BYE attack against alice is caught by alice's
	// detector without any hub appliance.
	tb, da, _ := coopBed(t, 4)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second)
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("no sniffed dialog")
	}
	tb.Sim.Schedule(0, func() { _ = tb.Attacker.ForgedBye(d, true) })
	tb.Run(2 * time.Second)
	if got := da.Engine().AlertsFor(core.RuleByeAttack); len(got) != 1 {
		t.Errorf("endpoint detector bye-attack alerts = %d, want 1", len(got))
	}
}

func TestControlTrafficOverheadBounded(t *testing.T) {
	// Section 6 worries about "overwhelming the system with control
	// messages": the exchange sends one message per observed outgoing IM,
	// not per packet.
	tb, da, db := coopBed(t, 5)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.EstablishCall(); err != nil {
		t.Fatal(err)
	}
	tb.Run(10 * time.Second) // ~1000 RTP packets
	tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "one message") })
	tb.Run(time.Second)
	if db.ControlSent != 1 {
		t.Errorf("bob's detector sent %d control messages, want 1", db.ControlSent)
	}
	if da.ControlRecv != 1 {
		t.Errorf("alice's detector received %d control messages, want 1", da.ControlRecv)
	}
}

func TestDetectorConfigValidation(t *testing.T) {
	if _, err := coop.NewDetector(coop.Config{}); err == nil {
		t.Error("NewDetector with nil host: want error")
	}
}
