package coop

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"scidive/internal/core"
	"scidive/internal/netsim"
	"scidive/internal/packet"
)

// wire message kinds (PeerEvent.Kind values).
const (
	msgIMSent = "IMSENT" // a peer's user sent an instant message
)

// PeerEvent is one event received from a peer detector, reconstructed
// from its digests.
type PeerEvent struct {
	At   time.Duration // sender's virtual timestamp
	Kind string
	From string // claimed sender AOR
	To   string // recipient user (no longer carried on the wire; empty)
}

// Alert is a cooperative detection result.
type Alert struct {
	At     time.Duration
	Rule   string
	Detail string
}

// Cooperative rule names.
const (
	// RuleCoopFakeIM fires when a received IM has no matching send event
	// from the impersonated sender's detector.
	RuleCoopFakeIM = "coop-fake-im"
	// RuleCoopSelfSpoof fires when a frame claiming this host's own source
	// address arrives inbound on its NIC — on a switched or hub LAN a host
	// never hears its own transmissions echoed, so such a frame is forged.
	RuleCoopSelfSpoof = "coop-self-spoof"
)

// Config configures a Detector.
type Config struct {
	// Host is the endpoint this detector protects.
	Host *netsim.Host
	// User is the AOR of the protected endpoint's user.
	User string
	// Peers are the exchange addresses of the other detectors.
	Peers []netip.AddrPort
	// Port is the local exchange port (default DefaultPort).
	Port uint16
	// CorrelationGrace is how long the correlator waits for a matching
	// peer event before raising an alarm (covers exchange latency).
	// Default 250ms.
	CorrelationGrace time.Duration
	// Engine tunes the wrapped SCIDIVE engine.
	Engine core.Config
}

// frame provenance, set around each HandleFrame call so the engine's
// OnEvent callback knows which direction produced an event.
type provenance int

const (
	provNone     provenance = iota
	provRxForMe             // received, addressed to this host
	provRxOther             // received, merely overheard (src claims us, or promiscuous)
	provTransmit            // this host's own transmission
)

// Detector is one endpoint-resident SCIDIVE instance with a cooperative
// exchange channel. It is the Probe/Aggregator machinery deployed at an
// endpoint: the probe exports the instant-message events this host's
// user really transmits (transmit provenance only, so the detector
// never vouches for traffic it merely overheard), and the aggregator
// runs one cross-point absence rule — an IM received here with no
// matching send event from the impersonated sender's detector within
// the correlation grace is a fake.
type Detector struct {
	cfg    Config
	engine *core.Engine
	sim    *netsim.Simulator
	probe  *Probe // nil without peers
	agg    *Aggregator
	point  string

	feeding    provenance
	peerEvents []PeerEvent
	alerts     []Alert
	alerted    map[string]bool

	// Stats.
	ControlSent int // digests transmitted (excluding retries and acks)
	ControlRecv int // digests received from peers
}

// NewDetector deploys a detector on cfg.Host, capturing both directions
// of the host's traffic (receive via promiscuous mode, transmit via the
// NIC transmit tap). Frames not addressed to or from the host are
// discarded before the engine (end-point IDS semantics: the paper's
// prototype "does not look into" other hosts' traffic).
func NewDetector(cfg Config) (*Detector, error) {
	if cfg.Host == nil {
		return nil, fmt.Errorf("coop: nil host")
	}
	if cfg.Port == 0 {
		cfg.Port = DefaultPort
	}
	if cfg.CorrelationGrace == 0 {
		cfg.CorrelationGrace = 250 * time.Millisecond
	}
	if cfg.Engine.Gen.DigestPort == 0 {
		// The wrapped engine must classify the exchange port as control
		// traffic even when the deployment moved it off the default.
		cfg.Engine.Gen.DigestPort = cfg.Port
	}
	d := &Detector{
		cfg:     cfg,
		engine:  core.NewEngine(cfg.Engine, core.WithEventLog()),
		sim:     cfg.Host.Sim(),
		point:   cfg.User,
		alerted: make(map[string]bool),
	}
	d.agg = NewAggregator(AggregatorConfig{
		Host:      cfg.Host,
		Port:      cfg.Port,
		Rules:     []core.Rule{fakeIMRule(d.point, cfg.CorrelationGrace)},
		Immediate: true,
	})
	d.agg.RuleEngine().OnAlert(func(a core.Alert) {
		d.alerts = append(d.alerts, Alert{At: a.At, Rule: a.Rule, Detail: a.Detail})
	})
	d.agg.OnDigest(func(dg *core.Digest) {
		d.ControlRecv++
		for _, ev := range dg.Events {
			d.peerEvents = append(d.peerEvents, PeerEvent{
				At: ev.At, Kind: msgIMSent, From: strings.TrimPrefix(ev.Session, "im:"),
			})
		}
	})
	if len(cfg.Peers) > 0 {
		probe, err := NewProbe(ProbeConfig{
			Host:        cfg.Host,
			Point:       d.point,
			Aggregators: cfg.Peers,
			Port:        cfg.Port,
			Export:      []core.EventType{core.EvSIPInstantMessage},
			Limits:      cfg.Engine.Limits,
		})
		if err != nil {
			return nil, err
		}
		d.probe = probe
	}
	d.engine.OnEvent(d.onEvent)
	cfg.Host.SetPromiscuous(d.handleRxFrame)
	cfg.Host.SetTransmitTap(d.handleTxFrame)
	if err := Bind(cfg.Host, cfg.Port, d.probe, d.agg); err != nil {
		return nil, fmt.Errorf("coop: %w", err)
	}
	return d, nil
}

// fakeIMRule is the cross-point re-expression of the original
// cooperative fake-IM check: an instant message observed at this
// endpoint (the positive step) with no matching instant-message event
// from any other observation point (the absent step) within the grace
// is an impersonation. The correlation key is the event session —
// "im:<sender AOR>" — so the vouch matches regardless of which Call-ID
// each vantage saw.
func fakeIMRule(selfPoint string, grace time.Duration) core.Rule {
	return core.Rule{
		Name:        RuleCoopFakeIM,
		Description: "A received IM must be matched by a send event from the claimed sender's own detector",
		Severity:    core.SeverityCritical,
		Steps:       []core.Step{{Type: core.EvSIPInstantMessage, Point: selfPoint}},
		Absent: []core.Step{{
			Type:  core.EvSIPInstantMessage,
			Where: func(e core.Event) bool { return e.Point != selfPoint },
		}},
		AbsentGrace:   grace,
		CrossProtocol: true,
		Stateful:      true,
	}
}

// Engine exposes the wrapped SCIDIVE engine.
func (d *Detector) Engine() *core.Engine { return d.engine }

// Aggregator exposes the cross-point matcher (inspection, checkpoints).
func (d *Detector) Aggregator() *Aggregator { return d.agg }

// Alerts returns cooperative alerts raised so far.
func (d *Detector) Alerts() []Alert { return append([]Alert(nil), d.alerts...) }

// AlertsFor returns cooperative alerts for one rule.
func (d *Detector) AlertsFor(rule string) []Alert {
	var out []Alert
	for _, a := range d.alerts {
		if a.Rule == rule {
			out = append(out, a)
		}
	}
	return out
}

// PeerEvents returns the events received from peers.
func (d *Detector) PeerEvents() []PeerEvent { return append([]PeerEvent(nil), d.peerEvents...) }

// onEvent routes the wrapped engine's events by frame provenance: IMs
// received for this host feed the cross-point matcher as this point's
// observations; IMs this host's own user transmitted are exported to
// the peers. Overheard traffic does neither — a detector must not vouch
// for a frame somebody else may have forged.
func (d *Detector) onEvent(ev core.Event) {
	if ev.Type != core.EvSIPInstantMessage {
		return
	}
	switch d.feeding {
	case provRxForMe:
		ev.Point = d.point
		d.agg.Feed(ev)
		// Mature the absence window once the grace passes with no vouch.
		d.sim.Schedule(d.cfg.CorrelationGrace, func() { d.agg.Flush(d.sim.Now()) })
	case provTransmit:
		if d.probe != nil && strings.HasPrefix(ev.Session, "im:"+d.cfg.User+"@") {
			d.probe.Observe(ev)
			d.ControlSent = d.probe.Stats().Sent
		}
	}
}

// handleRxFrame processes frames arriving at the NIC.
func (d *Detector) handleRxFrame(frame []byte) {
	iph, ok := d.decodeIP(frame)
	if !ok {
		return
	}
	me := d.cfg.Host.IP()
	if iph.Src != me && iph.Dst != me {
		return // end-point IDS: not our traffic
	}
	if iph.Src == me {
		// Inbound frame claiming our own address: forged. A host never
		// hears its own transmissions echoed back.
		d.raise(RuleCoopSelfSpoof, "self",
			fmt.Sprintf("inbound frame spoofing our address %v (to %v)", me, iph.Dst))
		// Fall through: the traffic still feeds the engine so the local
		// rules can work on it too.
	}
	if iph.Dst == me {
		d.feeding = provRxForMe
	} else {
		d.feeding = provRxOther
	}
	d.engine.HandleFrame(d.sim.Now(), frame)
	d.feeding = provNone
}

// handleTxFrame processes frames this host transmits.
func (d *Detector) handleTxFrame(frame []byte) {
	if _, ok := d.decodeIP(frame); !ok {
		return
	}
	d.feeding = provTransmit
	d.engine.HandleFrame(d.sim.Now(), frame)
	d.feeding = provNone
}

// decodeIP decodes the Ethernet/IPv4 layers of a frame.
func (d *Detector) decodeIP(frame []byte) (packet.IPv4Header, bool) {
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		return packet.IPv4Header{}, false
	}
	iph, _, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		return packet.IPv4Header{}, false
	}
	return iph, true
}

// raise records a deduplicated cooperative alert (the frame-level
// self-spoof path; rule alerts arrive via the aggregator's callback).
func (d *Detector) raise(rule, key, detail string) {
	k := rule + "|" + key
	if d.alerted[k] {
		return
	}
	d.alerted[k] = true
	d.alerts = append(d.alerts, Alert{At: d.sim.Now(), Rule: rule, Detail: detail})
}
