// Package baseline implements a stateless, session-unaware signature
// matcher in the style of a 2004-era Snort deployment. It exists as the
// comparator the paper argues against in Section 3.3: without session
// isolation or cross-protocol state, threshold rules over 4XX responses
// fire on benign registration traffic, and attacks whose signature spans
// protocols (the BYE attack's orphan media flow) cannot be expressed at
// all.
package baseline

import (
	"time"

	"scidive/internal/core"
	"scidive/internal/netsim"
	"scidive/internal/sip"
)

// Rule is one stateless detection rule: a per-packet predicate plus an
// optional global (not per-session!) threshold within a sliding window.
type Rule struct {
	Name        string
	Description string
	// Match is the per-packet predicate, evaluated on the decoded
	// footprint with no access to any session state.
	Match func(fp core.Footprint) bool
	// Threshold fires the rule only after this many matches within Window
	// across ALL traffic (0 or 1 = fire on every match).
	Threshold int
	Window    time.Duration
}

// Alert is one baseline rule firing.
type Alert struct {
	At     time.Duration
	Rule   string
	Detail string
}

// Engine evaluates stateless rules over a packet stream. It shares the
// SCIDIVE Distiller for packet decoding so the comparison isolates the
// detection methodology, not the decoder.
type Engine struct {
	distiller *core.Distiller
	rules     []Rule
	matches   map[string][]time.Duration // rule -> recent match times
	alerts    []Alert
}

// NewEngine returns a baseline engine with the given rules.
func NewEngine(rules []Rule) *Engine {
	return &Engine{
		distiller: core.NewDistiller(),
		rules:     rules,
		matches:   make(map[string][]time.Duration),
	}
}

// HandleFrame processes one observed frame (netsim.Tap compatible).
func (e *Engine) HandleFrame(at time.Duration, frame []byte) {
	fp := e.distiller.Distill(at, frame)
	if fp == nil {
		return
	}
	for i := range e.rules {
		r := &e.rules[i]
		if !r.Match(fp) {
			continue
		}
		if r.Threshold <= 1 {
			e.alerts = append(e.alerts, Alert{At: at, Rule: r.Name})
			continue
		}
		window := e.matches[r.Name]
		cutoff := at - r.Window
		for len(window) > 0 && window[0] < cutoff {
			window = window[1:]
		}
		window = append(window, at)
		e.matches[r.Name] = window
		if len(window) >= r.Threshold {
			e.alerts = append(e.alerts, Alert{At: at, Rule: r.Name})
			e.matches[r.Name] = window[:0]
		}
	}
}

// AttachTap subscribes the engine to all hub traffic.
func (e *Engine) AttachTap(n *netsim.Network) { n.AddTap(e.HandleFrame) }

// Alerts returns all alerts raised so far.
func (e *Engine) Alerts() []Alert { return append([]Alert(nil), e.alerts...) }

// AlertsFor returns alerts for one rule.
func (e *Engine) AlertsFor(rule string) []Alert {
	var out []Alert
	for _, a := range e.alerts {
		if a.Rule == rule {
			out = append(out, a)
		}
	}
	return out
}

// Baseline rule names.
const (
	Rule4XXFlood = "stateless-4xx-flood"
	RuleAnyBye   = "stateless-bye-seen"
)

// SnortLikeRuleset returns the Section 3.3 comparison rules:
//
//   - stateless-4xx-flood: N or more SIP 4XX responses within a window,
//     counted across all sessions — the naive way to catch REGISTER
//     floods, which also fires on concurrent benign registrations.
//   - stateless-bye-seen: every SIP BYE — the only stateless
//     approximation of BYE-attack detection, which alarms on every
//     legitimate teardown too.
func SnortLikeRuleset(threshold int, window time.Duration) []Rule {
	return []Rule{
		{
			Name:        Rule4XXFlood,
			Description: "N SIP 4XX responses within the window, any session",
			Match: func(fp core.Footprint) bool {
				sf, ok := fp.(*core.SIPFootprint)
				return ok && sf.Msg.IsResponse() && sf.Msg.StatusCode >= 400 && sf.Msg.StatusCode < 500
			},
			Threshold: threshold,
			Window:    window,
		},
		{
			Name:        RuleAnyBye,
			Description: "any SIP BYE request",
			Match: func(fp core.Footprint) bool {
				sf, ok := fp.(*core.SIPFootprint)
				return ok && sf.Msg.IsRequest() && sf.Msg.Method == sip.MethodBye
			},
		},
	}
}
