package baseline_test

import (
	"testing"
	"time"

	"scidive/internal/attack"
	"scidive/internal/baseline"
	"scidive/internal/core"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

// deployBoth puts a SCIDIVE engine and the stateless baseline on the same
// hub for side-by-side comparison.
func deployBoth(t *testing.T, seed int64) (*scenario.Testbed, *core.Engine, *baseline.Engine) {
	t.Helper()
	tb, err := scenario.New(scenario.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	scidive := core.NewEngine(core.Config{})
	scidive.AttachTap(tb.Net)
	base := baseline.NewEngine(baseline.SnortLikeRuleset(4, 60*time.Second))
	base.AttachTap(tb.Net)
	return tb, scidive, base
}

func TestBaselineFalseAlarmsOnBenignRegistrations(t *testing.T) {
	// Section 3.3's key comparison: several clients registering normally.
	// Each registration draws exactly one 401, so four registration rounds
	// cross the global threshold — a false alarm. SCIDIVE, isolating
	// sessions, stays silent.
	tb, scidive, base := deployBoth(t, 1)
	for i := 0; i < 3; i++ {
		tb.Alice.Register(nil)
		tb.Bob.Register(nil)
		tb.Run(2 * time.Second)
	}
	if got := len(scidive.Alerts()); got != 0 {
		t.Errorf("SCIDIVE raised %d alerts on benign traffic", got)
	}
	if got := len(base.AlertsFor(baseline.Rule4XXFlood)); got == 0 {
		t.Error("baseline raised no 4xx-flood false alarm — comparison premise broken")
	}
}

func TestBaselineAlarmsOnEveryLegitTeardown(t *testing.T) {
	tb, scidive, base := deployBoth(t, 2)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(5 * time.Second)
	tb.Sim.Schedule(0, func() { _ = tb.Alice.Hangup(call) })
	tb.Run(2 * time.Second)
	if got := len(scidive.Alerts()); got != 0 {
		t.Errorf("SCIDIVE raised %d alerts on a normal call", got)
	}
	// The stateless BYE rule fires on the legitimate hangup (twice: both
	// proxy legs) — unusable as a BYE-attack detector.
	if got := len(base.AlertsFor(baseline.RuleAnyBye)); got == 0 {
		t.Error("baseline BYE rule did not fire on legitimate teardown")
	}
}

func TestBothCatchRegisterFloodButBaselineCannotSeparate(t *testing.T) {
	tb, scidive, base := deployBoth(t, 3)
	aor := sip.URI{User: "mallory", Host: scenario.AddrProxy.String()}
	tb.Attacker.RegisterFlood(tb.Proxy.Addr(), aor, 20, attack.FixedInterval(100*time.Millisecond))
	tb.Run(5 * time.Second)
	if got := len(scidive.AlertsFor(core.RuleRegisterFlood)); got != 1 {
		t.Errorf("SCIDIVE flood alerts = %d, want 1", got)
	}
	if got := len(base.AlertsFor(baseline.Rule4XXFlood)); got == 0 {
		t.Error("baseline missed the flood entirely")
	}
}

func TestBaselineThresholdOneFiresImmediately(t *testing.T) {
	rules := []baseline.Rule{{
		Name:  "every-sip",
		Match: func(fp core.Footprint) bool { _, ok := fp.(*core.SIPFootprint); return ok },
	}}
	tb, err := scenario.New(scenario.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := baseline.NewEngine(rules)
	eng.AttachTap(tb.Net)
	tb.Alice.Register(nil)
	tb.Run(2 * time.Second)
	if len(eng.Alerts()) == 0 {
		t.Error("threshold-1 rule never fired")
	}
}

func TestBaselineWindowExpiry(t *testing.T) {
	// Matches spread wider than the window must not accumulate.
	rules := []baseline.Rule{{
		Name: "windowed",
		Match: func(fp core.Footprint) bool {
			sf, ok := fp.(*core.SIPFootprint)
			return ok && sf.Msg.IsResponse() && sf.Msg.StatusCode == sip.StatusUnauthorized
		},
		Threshold: 3,
		Window:    time.Second,
	}}
	tb, err := scenario.New(scenario.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng := baseline.NewEngine(rules)
	eng.AttachTap(tb.Net)
	// Three registrations 10s apart: 3 total 401s but never 3 within 1s.
	for i := 0; i < 3; i++ {
		tb.Alice.Register(nil)
		tb.Run(10 * time.Second)
	}
	if got := len(eng.Alerts()); got != 0 {
		t.Errorf("windowed rule fired %d times across spread-out matches", got)
	}
}
