// Package chaoscore provides deterministic fault injection for exercising
// the sharded engine's failure-containment paths: worker panics, worker
// stalls, and wire-level frame corruption. It is test infrastructure —
// production deployments never construct an injector — but it lives in a
// non-test package so chaos scenarios can be scripted from experiments
// and examples as well as from tests.
//
// Faults are addressed by (shard, frame ordinal): the sharded router
// assigns every routed frame item a per-shard sequence number, and an
// injector decides the fate of each. Given the same traffic and the same
// script, a chaos run is fully reproducible. Because ordinals count
// processed frames, a scripted fault can land inside any drain point —
// including the per-shard drain of a rolling restart sweep — not just
// the steady-state feed path.
package chaoscore

import (
	"math/rand"
	"sync"
	"time"

	"scidive/internal/core"
)

// ScriptedInjector fires faults at exact (shard, frame-ordinal) points.
// The zero value injects nothing. It is safe for concurrent use by
// multiple shard workers.
type ScriptedInjector struct {
	mu     sync.Mutex
	panics map[point]struct{}
	stalls map[point]time.Duration
}

type point struct {
	shard int
	frame uint64
}

// PanicAt schedules a worker panic when the given shard processes its
// n-th routed frame item (0-based).
func (si *ScriptedInjector) PanicAt(shard int, frame uint64) *ScriptedInjector {
	si.mu.Lock()
	if si.panics == nil {
		si.panics = make(map[point]struct{})
	}
	si.panics[point{shard, frame}] = struct{}{}
	si.mu.Unlock()
	return si
}

// StallAt schedules a processing stall of duration d at the given shard
// and frame ordinal. Long stalls trip the engine's watchdog when
// Limits.StallTimeout is set.
func (si *ScriptedInjector) StallAt(shard int, frame uint64, d time.Duration) *ScriptedInjector {
	si.mu.Lock()
	if si.stalls == nil {
		si.stalls = make(map[point]time.Duration)
	}
	si.stalls[point{shard, frame}] = d
	si.mu.Unlock()
	return si
}

// At implements core.FaultInjector.
func (si *ScriptedInjector) At(shard int, frame uint64) core.Fault {
	si.mu.Lock()
	defer si.mu.Unlock()
	p := point{shard, frame}
	var f core.Fault
	if _, ok := si.panics[p]; ok {
		f.Panic = true
	}
	if d, ok := si.stalls[p]; ok {
		f.Stall = d
	}
	return f
}

var _ core.FaultInjector = (*ScriptedInjector)(nil)

// KillAt wraps a frame handler with an abrupt process death at the n-th
// frame (0-based): the first n frames pass through, then onKill fires
// exactly once and that frame plus everything after it is dropped on the
// floor — the IDS saw nothing past the kill point, exactly like a
// SIGKILL between two reads of the capture. onKill is where a test
// checkpoints (or deliberately fails to checkpoint) the dying engine;
// resuming is the caller's business, as it is for a real process.
func KillAt(n int, onKill func(), next func(at time.Duration, frame []byte)) func(at time.Duration, frame []byte) {
	var mu sync.Mutex
	count := 0
	killed := false
	return func(at time.Duration, frame []byte) {
		mu.Lock()
		c := count
		count++
		fire := c >= n && !killed
		if fire {
			killed = true
		}
		mu.Unlock()
		if c < n {
			next(at, frame)
			return
		}
		if fire {
			onKill()
		}
	}
}

// CorruptingTap wraps a frame handler (e.g. Engine.HandleFrame) with a
// deterministic corrupter: every n-th frame has one random byte flipped
// before delivery. Decoders must treat the result as untrusted input —
// the tap exists to prove that corrupt wire data degrades into parse
// errors and raw footprints, never into a crashed or wedged IDS.
func CorruptingTap(seed int64, every int, next func(at time.Duration, frame []byte)) func(at time.Duration, frame []byte) {
	if every <= 0 {
		every = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	count := 0
	return func(at time.Duration, frame []byte) {
		mu.Lock()
		count++
		corrupt := count%every == 0
		var pos int
		var flip byte
		if corrupt && len(frame) > 0 {
			pos = rng.Intn(len(frame))
			flip = byte(1 + rng.Intn(255))
		}
		mu.Unlock()
		if corrupt && len(frame) > 0 {
			mangled := make([]byte, len(frame))
			copy(mangled, frame)
			mangled[pos] ^= flip
			frame = mangled
		}
		next(at, frame)
	}
}
