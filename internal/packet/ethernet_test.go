package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	tests := []struct {
		name  string
		frame EthernetFrame
	}{
		{
			name: "ipv4 with payload",
			frame: EthernetFrame{
				Dst:     MAC{0x02, 0, 0, 0, 0, 2},
				Src:     MAC{0x02, 0, 0, 0, 0, 1},
				Type:    EtherTypeIPv4,
				Payload: []byte("hello"),
			},
		},
		{
			name: "broadcast empty payload",
			frame: EthernetFrame{
				Dst:  BroadcastMAC,
				Src:  MAC{0x02, 0, 0, 0, 0, 9},
				Type: EtherTypeARP,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			buf := MarshalEthernet(&tt.frame)
			got, err := UnmarshalEthernet(buf)
			if err != nil {
				t.Fatalf("UnmarshalEthernet: %v", err)
			}
			if got.Dst != tt.frame.Dst || got.Src != tt.frame.Src || got.Type != tt.frame.Type {
				t.Errorf("header mismatch: got %+v want %+v", got, tt.frame)
			}
			if !bytes.Equal(got.Payload, tt.frame.Payload) {
				t.Errorf("payload mismatch: got %q want %q", got.Payload, tt.frame.Payload)
			}
		})
	}
}

func TestEthernetTruncated(t *testing.T) {
	for _, n := range []int{0, 1, 13} {
		if _, err := UnmarshalEthernet(make([]byte, n)); err == nil {
			t.Errorf("UnmarshalEthernet(%d bytes): want error, got nil", n)
		}
	}
}

func TestEthernetRoundTripProperty(t *testing.T) {
	f := func(dst, src [6]byte, typ uint16, payload []byte) bool {
		in := EthernetFrame{Dst: MAC(dst), Src: MAC(src), Type: EtherType(typ), Payload: payload}
		out, err := UnmarshalEthernet(MarshalEthernet(&in))
		return err == nil && out.Dst == in.Dst && out.Src == in.Src &&
			out.Type == in.Type && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0xab, 0x00, 0x01, 0xff, 0x10}
	if got, want := m.String(), "02:ab:00:01:ff:10"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !BroadcastMAC.IsBroadcast() {
		t.Error("BroadcastMAC.IsBroadcast() = false")
	}
	if m.IsBroadcast() {
		t.Error("unicast MAC reported as broadcast")
	}
}

func TestEtherTypeString(t *testing.T) {
	tests := []struct {
		t    EtherType
		want string
	}{
		{EtherTypeIPv4, "IPv4"},
		{EtherTypeARP, "ARP"},
		{EtherType(0x86dd), "EtherType(0x86dd)"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("EtherType(%#x).String() = %q, want %q", uint16(tt.t), got, tt.want)
		}
	}
}
