package packet

import (
	"bytes"
	"net/netip"
	"testing"
)

var (
	tcpSrcIP = netip.MustParseAddr("10.0.0.1")
	tcpDstIP = netip.MustParseAddr("10.0.0.2")
)

func TestMarshalPeekTCPRoundTrip(t *testing.T) {
	payload := []byte("INVITE sip:bob@example.com SIP/2.0\r\n")
	h := TCPHeader{
		SrcPort: 5060, DstPort: 40000,
		Seq: 0xdeadbeef, Ack: 0x1234,
		Flags: TCPFlagACK | TCPFlagPSH, Window: 8192,
	}
	seg := MarshalTCP(tcpSrcIP, tcpDstIP, h, payload)
	got, body, err := PeekTCP(tcpSrcIP, tcpDstIP, seg)
	if err != nil {
		t.Fatalf("PeekTCP: %v", err)
	}
	if got.SrcPort != h.SrcPort || got.DstPort != h.DstPort || got.Seq != h.Seq ||
		got.Ack != h.Ack || got.Flags != h.Flags || got.Window != h.Window {
		t.Errorf("header mismatch: got %+v want %+v", got, h)
	}
	if got.DataOffset != 5 {
		t.Errorf("data offset = %d, want 5", got.DataOffset)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload mismatch: %q", body)
	}
}

func TestPeekTCPRejectsCorruption(t *testing.T) {
	seg := MarshalTCP(tcpSrcIP, tcpDstIP, TCPHeader{SrcPort: 1, DstPort: 2}, []byte("hello"))

	if _, _, err := PeekTCP(tcpSrcIP, tcpDstIP, seg[:10]); err == nil {
		t.Error("truncated header accepted")
	}

	bad := append([]byte(nil), seg...)
	bad[TCPHeaderLen] ^= 0xff // flip a payload byte
	if _, _, err := PeekTCP(tcpSrcIP, tcpDstIP, bad); err == nil {
		t.Error("corrupt payload passed checksum")
	}

	short := append([]byte(nil), seg...)
	short[12] = 4 << 4 // data offset below minimum
	if _, _, err := PeekTCP(tcpSrcIP, tcpDstIP, short); err == nil {
		t.Error("data offset below minimum accepted")
	}

	long := append([]byte(nil), seg...)
	long[12] = 15 << 4 // data offset beyond the segment
	if _, _, err := PeekTCP(tcpSrcIP, tcpDstIP, long); err == nil {
		t.Error("data offset beyond segment accepted")
	}
}

func TestPeekTCPSkipsOptions(t *testing.T) {
	// Hand-build a segment with 4 bytes of options (data offset 6).
	payload := []byte("data")
	seg := MarshalTCP(tcpSrcIP, tcpDstIP, TCPHeader{SrcPort: 9, DstPort: 10, Flags: TCPFlagACK}, nil)
	withOpts := make([]byte, 0, len(seg)+4+len(payload))
	withOpts = append(withOpts, seg...)
	withOpts = append(withOpts, 1, 1, 1, 0) // NOP NOP NOP EOL
	withOpts = append(withOpts, payload...)
	withOpts[12] = 6 << 4
	withOpts[16], withOpts[17] = 0, 0
	sum := tcpChecksum(tcpSrcIP, tcpDstIP, withOpts)
	withOpts[16], withOpts[17] = byte(sum>>8), byte(sum)

	h, body, err := PeekTCP(tcpSrcIP, tcpDstIP, withOpts)
	if err != nil {
		t.Fatalf("PeekTCP with options: %v", err)
	}
	if h.DataOffset != 6 {
		t.Errorf("data offset = %d, want 6", h.DataOffset)
	}
	if !bytes.Equal(body, payload) {
		t.Errorf("payload = %q, want %q", body, payload)
	}
}

// decodeTCPFrame unwraps Ethernet/IPv4/TCP and returns header + payload.
func decodeTCPFrame(t *testing.T, frame []byte) (TCPHeader, []byte) {
	t.Helper()
	ef, err := UnmarshalEthernet(frame)
	if err != nil {
		t.Fatalf("ethernet: %v", err)
	}
	iph, ipp, err := UnmarshalIPv4(ef.Payload)
	if err != nil {
		t.Fatalf("ipv4: %v", err)
	}
	if iph.Protocol != ProtoTCP {
		t.Fatalf("protocol = %d, want TCP", iph.Protocol)
	}
	th, body, err := PeekTCP(iph.Src, iph.Dst, ipp)
	if err != nil {
		t.Fatalf("tcp: %v", err)
	}
	return th, body
}

func TestBuildTCPFramesSegmentsPayload(t *testing.T) {
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	spec := TCPFrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: tcpSrcIP, DstIP: tcpDstIP,
		SrcPort: 40000, DstPort: 5060,
		Seq: 1000, Flags: TCPFlagACK | TCPFlagPSH | TCPFlagFIN,
		IPID: 7, Payload: payload,
	}
	frames, err := BuildTCPFrames(spec, 1500)
	if err != nil {
		t.Fatalf("BuildTCPFrames: %v", err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	var rebuilt []byte
	next := spec.Seq
	for i, f := range frames {
		h, body := decodeTCPFrame(t, f)
		if h.Seq != next {
			t.Errorf("frame %d: seq %d, want %d", i, h.Seq, next)
		}
		last := i == len(frames)-1
		if got := h.Flags&TCPFlagFIN != 0; got != last {
			t.Errorf("frame %d: FIN = %v, want %v", i, got, last)
		}
		if h.Flags&TCPFlagACK == 0 {
			t.Errorf("frame %d: ACK cleared", i)
		}
		next += uint32(len(body))
		rebuilt = append(rebuilt, body...)
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Error("reassembled payload differs from input")
	}
}

func TestBuildTCPFramesControlSegment(t *testing.T) {
	spec := TCPFrameSpec{
		SrcIP: tcpSrcIP, DstIP: tcpDstIP,
		SrcPort: 1, DstPort: 2, Seq: 500, Flags: TCPFlagSYN,
	}
	frames, err := BuildTCPFrames(spec, 0)
	if err != nil {
		t.Fatalf("BuildTCPFrames: %v", err)
	}
	if len(frames) != 1 {
		t.Fatalf("got %d frames, want 1 for empty payload", len(frames))
	}
	h, body := decodeTCPFrame(t, frames[0])
	if !h.SYN() || len(body) != 0 || h.Seq != 500 {
		t.Errorf("control segment decoded as %+v payload %q", h, body)
	}
}
