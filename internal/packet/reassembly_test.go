package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// fragmentsFor builds serialized fragments of a payload for tests.
func fragmentsFor(t *testing.T, id uint16, payload []byte, mtu int) []struct {
	h IPv4Header
	p []byte
} {
	t.Helper()
	h := IPv4Header{ID: id, TTL: 64, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
	pkts, err := FragmentIPv4(&h, payload, mtu)
	if err != nil {
		t.Fatalf("FragmentIPv4: %v", err)
	}
	out := make([]struct {
		h IPv4Header
		p []byte
	}, len(pkts))
	for i, pkt := range pkts {
		gh, gp, err := UnmarshalIPv4(pkt)
		if err != nil {
			t.Fatalf("UnmarshalIPv4: %v", err)
		}
		out[i].h, out[i].p = gh, gp
	}
	return out
}

func TestReassemblerInOrder(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab, 0xcd}, 2000)
	frags := fragmentsFor(t, 1, payload, 576)
	r := NewReassembler(0)
	for i, fr := range frags {
		h, p, done, err := r.Insert(fr.h, fr.p, 0)
		if err != nil {
			t.Fatalf("Insert fragment %d: %v", i, err)
		}
		if last := i == len(frags)-1; done != last {
			t.Fatalf("fragment %d: done=%v, want %v", i, done, last)
		}
		if done {
			if !bytes.Equal(p, payload) {
				t.Error("reassembled payload differs")
			}
			if int(h.TotalLen) != IPv4HeaderLen+len(payload) {
				t.Errorf("TotalLen = %d, want %d", h.TotalLen, IPv4HeaderLen+len(payload))
			}
		}
	}
	if r.Pending() != 0 {
		t.Errorf("Pending() = %d after completion, want 0", r.Pending())
	}
}

func TestReassemblerOutOfOrder(t *testing.T) {
	payload := make([]byte, 5000)
	rng := rand.New(rand.NewSource(1))
	rng.Read(payload)
	frags := fragmentsFor(t, 2, payload, 576)
	order := rng.Perm(len(frags))
	r := NewReassembler(0)
	var got []byte
	for _, i := range order {
		_, p, done, err := r.Insert(frags[i].h, frags[i].p, 0)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if done {
			got = p
		}
	}
	if !bytes.Equal(got, payload) {
		t.Error("out-of-order reassembly failed")
	}
}

func TestReassemblerDuplicateFragments(t *testing.T) {
	payload := make([]byte, 2000)
	frags := fragmentsFor(t, 3, payload, 576)
	r := NewReassembler(0)
	// Deliver the first fragment twice, then the rest.
	if _, _, done, err := r.Insert(frags[0].h, frags[0].p, 0); err != nil || done {
		t.Fatalf("first insert: done=%v err=%v", done, err)
	}
	if _, _, done, err := r.Insert(frags[0].h, frags[0].p, 0); err != nil || done {
		t.Fatalf("duplicate insert: done=%v err=%v", done, err)
	}
	var completed bool
	for _, fr := range frags[1:] {
		_, p, done, err := r.Insert(fr.h, fr.p, 0)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if done {
			completed = true
			if !bytes.Equal(p, payload) {
				t.Error("payload differs with duplicate fragment")
			}
		}
	}
	if !completed {
		t.Error("reassembly did not complete")
	}
}

func TestReassemblerInterleavedStreams(t *testing.T) {
	p1 := bytes.Repeat([]byte{1}, 1600)
	p2 := bytes.Repeat([]byte{2}, 1600)
	f1 := fragmentsFor(t, 10, p1, 576)
	f2 := fragmentsFor(t, 11, p2, 576)
	r := NewReassembler(0)
	results := make(map[uint16][]byte)
	for i := 0; i < len(f1) || i < len(f2); i++ {
		for _, frs := range [][]struct {
			h IPv4Header
			p []byte
		}{f1, f2} {
			if i >= len(frs) {
				continue
			}
			h, p, done, err := r.Insert(frs[i].h, frs[i].p, 0)
			if err != nil {
				t.Fatalf("Insert: %v", err)
			}
			if done {
				results[h.ID] = p
			}
		}
	}
	if !bytes.Equal(results[10], p1) || !bytes.Equal(results[11], p2) {
		t.Error("interleaved streams were not kept separate")
	}
}

func TestReassemblerTimeout(t *testing.T) {
	payload := make([]byte, 2000)
	frags := fragmentsFor(t, 4, payload, 576)
	r := NewReassembler(10 * time.Second)
	if _, _, _, err := r.Insert(frags[0].h, frags[0].p, 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if r.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", r.Pending())
	}
	// Remaining fragments arrive after the timeout: the buffer was evicted,
	// so reassembly never completes for this set.
	var completed bool
	for _, fr := range frags[1:] {
		_, _, done, err := r.Insert(fr.h, fr.p, 11*time.Second)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		completed = completed || done
	}
	if completed {
		t.Error("reassembly completed despite evicted first fragment")
	}
}

func TestReassemblerUnfragmentedPassThrough(t *testing.T) {
	r := NewReassembler(0)
	h := IPv4Header{ID: 5, TTL: 64, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
	payload := []byte("whole")
	gh, gp, done, err := r.Insert(h, payload, 0)
	if err != nil || !done {
		t.Fatalf("Insert unfragmented: done=%v err=%v", done, err)
	}
	if gh.ID != 5 || !bytes.Equal(gp, payload) {
		t.Error("pass-through altered the packet")
	}
}
