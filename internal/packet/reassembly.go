package packet

import (
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// fragKey identifies a fragment stream per RFC 791: source, destination,
// protocol, and identification.
type fragKey struct {
	src, dst netip.Addr
	proto    uint8
	id       uint16
}

// FragID is the exported identity of a fragment stream, handed to
// eviction callbacks so callers mirroring reassembly state can drop the
// same stream.
type FragID struct {
	Src, Dst netip.Addr
	Proto    uint8
	ID       uint16
}

func (k fragKey) exported() FragID {
	return FragID{Src: k.src, Dst: k.dst, Proto: k.proto, ID: k.id}
}

// less orders fragment streams deterministically (oldest-eviction
// tie-break): by source, destination, protocol, then identification.
func (k fragKey) less(o fragKey) bool {
	if c := k.src.Compare(o.src); c != 0 {
		return c < 0
	}
	if c := k.dst.Compare(o.dst); c != 0 {
		return c < 0
	}
	if k.proto != o.proto {
		return k.proto < o.proto
	}
	return k.id < o.id
}

// fragBuf accumulates the fragments of one packet.
type fragBuf struct {
	data     []byte // reassembled payload, grown as fragments arrive
	have     []bool // per-8-byte-unit coverage map
	totalLen int    // payload length, known once the last fragment arrives (-1 until then)
	first    time.Duration
}

// Reassembler reassembles fragmented IPv4 packets. It is keyed on
// (src, dst, protocol, ID) and evicts incomplete packets that exceed the
// configured timeout. Time is supplied by the caller (the simulation's
// virtual clock) rather than read from the wall clock.
//
// The zero value is not ready for use; call NewReassembler.
type Reassembler struct {
	timeout time.Duration
	bufs    map[fragKey]*fragBuf
	limit   int // max incomplete streams retained; 0 means unbounded
	evicted int // streams dropped to respect limit (not timeouts)
	onEvict func(FragID)
}

// DefaultReassemblyTimeout is how long an incomplete packet is retained.
const DefaultReassemblyTimeout = 30 * time.Second

// NewReassembler returns a Reassembler that discards incomplete packets
// older than timeout. A non-positive timeout uses DefaultReassemblyTimeout.
func NewReassembler(timeout time.Duration) *Reassembler {
	if timeout <= 0 {
		timeout = DefaultReassemblyTimeout
	}
	return &Reassembler{timeout: timeout, bufs: make(map[fragKey]*fragBuf)}
}

// Pending returns the number of incomplete packets currently buffered.
func (r *Reassembler) Pending() int { return len(r.bufs) }

// SetLimit caps the number of incomplete fragment streams retained at
// once. When a new stream would exceed the cap, the oldest incomplete
// stream is evicted (ties broken by stream identity). A non-positive
// limit means unbounded.
func (r *Reassembler) SetLimit(n int) { r.limit = n }

// OnEvict registers a callback invoked with the identity of every stream
// dropped to respect the capacity limit (timeout expiry does not fire
// it: callers track timeouts themselves via the shared virtual clock).
func (r *Reassembler) OnEvict(fn func(FragID)) { r.onEvict = fn }

// CapacityEvicted reports how many incomplete streams were dropped to
// respect the capacity limit.
func (r *Reassembler) CapacityEvicted() int { return r.evicted }

// evictOldest drops the oldest incomplete stream other than keep.
func (r *Reassembler) evictOldest(keep fragKey) {
	var victim fragKey
	found := false
	for k, fb := range r.bufs {
		if k == keep {
			continue
		}
		if !found || fb.first < r.bufs[victim].first ||
			(fb.first == r.bufs[victim].first && k.less(victim)) {
			victim, found = k, true
		}
	}
	if !found {
		return
	}
	delete(r.bufs, victim)
	r.evicted++
	if r.onEvict != nil {
		r.onEvict(victim.exported())
	}
}

// Insert adds one IPv4 packet (possibly a fragment) observed at the given
// virtual time. If the packet is unfragmented, or completes a fragment
// set, Insert returns the header and full payload with done=true. The
// returned payload is owned by the caller for fragmented packets but
// aliases payload for unfragmented ones.
func (r *Reassembler) Insert(h IPv4Header, payload []byte, now time.Duration) (IPv4Header, []byte, bool, error) {
	r.Expire(now)
	if h.FragOffset == 0 && !h.MoreFragments() {
		return h, payload, true, nil
	}
	if h.FragOffset != 0 && len(payload)%8 != 0 && h.MoreFragments() {
		return IPv4Header{}, nil, false, fmt.Errorf("ipv4 reassembly: non-final fragment payload %d not a multiple of 8", len(payload))
	}
	key := fragKey{src: h.Src, dst: h.Dst, proto: h.Protocol, id: h.ID}
	fb, ok := r.bufs[key]
	if !ok {
		if r.limit > 0 && len(r.bufs) >= r.limit {
			r.evictOldest(key)
		}
		fb = &fragBuf{totalLen: -1, first: now}
		r.bufs[key] = fb
	}
	off := int(h.FragOffset) * 8
	end := off + len(payload)
	if end > 0xffff {
		return IPv4Header{}, nil, false, fmt.Errorf("ipv4 reassembly: fragment end %d exceeds maximum packet size", end)
	}
	if end > len(fb.data) {
		grown := make([]byte, end)
		copy(grown, fb.data)
		fb.data = grown
		units := (end + 7) / 8
		grownHave := make([]bool, units)
		copy(grownHave, fb.have)
		fb.have = grownHave
	}
	copy(fb.data[off:end], payload)
	for u := off / 8; u < (end+7)/8; u++ {
		fb.have[u] = true
	}
	if !h.MoreFragments() {
		fb.totalLen = end
	}
	if fb.totalLen < 0 || len(fb.data) < fb.totalLen {
		return IPv4Header{}, nil, false, nil
	}
	for u := 0; u < (fb.totalLen+7)/8; u++ {
		if !fb.have[u] {
			return IPv4Header{}, nil, false, nil
		}
	}
	delete(r.bufs, key)
	hh := h
	hh.Flags &^= FlagMF
	hh.FragOffset = 0
	hh.TotalLen = uint16(IPv4HeaderLen + fb.totalLen)
	return hh, fb.data[:fb.totalLen], true, nil
}

// Expire drops incomplete packets older than the timeout as of now.
func (r *Reassembler) Expire(now time.Duration) {
	for k, fb := range r.bufs {
		if now-fb.first > r.timeout {
			delete(r.bufs, k)
		}
	}
}

// FragStream is the exported state of one incomplete fragment stream, used
// by checkpoint/restore to carry reassembly buffers across a process
// restart.
type FragStream struct {
	ID       FragID
	Data     []byte
	Have     []bool
	TotalLen int
	First    time.Duration
}

// ExportStreams returns every incomplete stream in deterministic order
// (the eviction tie-break order), with buffers copied so the caller may
// retain them.
func (r *Reassembler) ExportStreams() []FragStream {
	keys := make([]fragKey, 0, len(r.bufs))
	for k := range r.bufs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	out := make([]FragStream, len(keys))
	for i, k := range keys {
		fb := r.bufs[k]
		out[i] = FragStream{
			ID:       k.exported(),
			Data:     append([]byte(nil), fb.data...),
			Have:     append([]bool(nil), fb.have...),
			TotalLen: fb.totalLen,
			First:    fb.first,
		}
	}
	return out
}

// ImportStreams replaces the incomplete-stream table with the given
// exported streams (checkpoint restore). The capacity-eviction counter is
// set to evicted so restored stats reconcile.
func (r *Reassembler) ImportStreams(streams []FragStream, evicted int) {
	clear(r.bufs)
	for _, st := range streams {
		k := fragKey{src: st.ID.Src, dst: st.ID.Dst, proto: st.ID.Proto, id: st.ID.ID}
		r.bufs[k] = &fragBuf{
			data:     append([]byte(nil), st.Data...),
			have:     append([]bool(nil), st.Have...),
			totalLen: st.TotalLen,
			first:    st.First,
		}
	}
	r.evicted = evicted
}
