package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// UDPHeaderLen is the length of a UDP header in bytes.
const UDPHeaderLen = 8

// UDPHeader is a decoded UDP header.
type UDPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// udpPseudoSum computes the partial checksum of the IPv4 pseudo-header.
func udpPseudoSum(src, dst netip.Addr, udpLen int) uint32 {
	s, d := src.As4(), dst.As4()
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(s[0:2]))
	sum += uint32(binary.BigEndian.Uint16(s[2:4]))
	sum += uint32(binary.BigEndian.Uint16(d[0:2]))
	sum += uint32(binary.BigEndian.Uint16(d[2:4]))
	sum += uint32(ProtoUDP)
	sum += uint32(udpLen)
	return sum
}

// udpChecksum computes the UDP checksum over the pseudo-header and datagram.
func udpChecksum(src, dst netip.Addr, dgram []byte) uint16 {
	sum := udpPseudoSum(src, dst, len(dgram))
	for i := 0; i+1 < len(dgram); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(dgram[i : i+2]))
	}
	if len(dgram)%2 == 1 {
		sum += uint32(dgram[len(dgram)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	c := ^uint16(sum)
	if c == 0 {
		c = 0xffff // RFC 768: transmitted as all ones when computed as zero
	}
	return c
}

// MarshalUDP serializes a UDP datagram with a valid checksum. The src and
// dst IPs are needed for the pseudo-header only.
func MarshalUDP(src, dst netip.Addr, srcPort, dstPort uint16, payload []byte) ([]byte, error) {
	dgramLen := UDPHeaderLen + len(payload)
	if dgramLen > 0xffff {
		return nil, fmt.Errorf("udp: datagram too large (%d bytes)", dgramLen)
	}
	buf := make([]byte, dgramLen)
	binary.BigEndian.PutUint16(buf[0:2], srcPort)
	binary.BigEndian.PutUint16(buf[2:4], dstPort)
	binary.BigEndian.PutUint16(buf[4:6], uint16(dgramLen))
	copy(buf[UDPHeaderLen:], payload)
	binary.BigEndian.PutUint16(buf[6:8], udpChecksum(src, dst, buf))
	return buf, nil
}

// verifyUDPChecksum reports whether dgram's stored checksum matches the
// one computed over the pseudo-header and datagram. It treats the
// checksum field (bytes 6..7) as zero while summing, so no scratch copy
// of the datagram is needed.
func verifyUDPChecksum(src, dst netip.Addr, dgram []byte, want uint16) bool {
	sum := udpPseudoSum(src, dst, len(dgram))
	for i := 0; i+1 < len(dgram); i += 2 {
		if i == 6 {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(dgram[i : i+2]))
	}
	if len(dgram)%2 == 1 {
		sum += uint32(dgram[len(dgram)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	c := ^uint16(sum)
	if c == 0 {
		c = 0xffff
	}
	return c == want
}

// PeekUDP decodes a UDP datagram exactly like UnmarshalUDP — same header
// validation, same checksum acceptance — but without allocating: the
// checksum is verified in place. Callers on hot paths (the sharded
// router's per-frame peek) use this to classify traffic cheaply; a frame
// PeekUDP rejects is exactly a frame UnmarshalUDP would reject.
func PeekUDP(src, dst netip.Addr, buf []byte) (UDPHeader, []byte, error) {
	if len(buf) < UDPHeaderLen {
		return UDPHeader{}, nil, fmt.Errorf("udp header: %w (%d bytes)", ErrTruncated, len(buf))
	}
	var h UDPHeader
	h.SrcPort = binary.BigEndian.Uint16(buf[0:2])
	h.DstPort = binary.BigEndian.Uint16(buf[2:4])
	h.Length = binary.BigEndian.Uint16(buf[4:6])
	h.Checksum = binary.BigEndian.Uint16(buf[6:8])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(buf) {
		return UDPHeader{}, nil, fmt.Errorf("udp: length %d outside buffer of %d bytes", h.Length, len(buf))
	}
	dgram := buf[:h.Length]
	if h.Checksum != 0 && src.Is4() && dst.Is4() {
		if !verifyUDPChecksum(src, dst, dgram, h.Checksum) {
			return UDPHeader{}, nil, fmt.Errorf("udp: bad checksum 0x%04x", h.Checksum)
		}
	}
	return h, dgram[UDPHeaderLen:], nil
}

// UnmarshalUDP decodes a UDP datagram, validating the length field and,
// when src and dst are valid, the checksum (a zero checksum means
// "not computed" and is accepted). The returned payload aliases buf.
func UnmarshalUDP(src, dst netip.Addr, buf []byte) (UDPHeader, []byte, error) {
	if len(buf) < UDPHeaderLen {
		return UDPHeader{}, nil, fmt.Errorf("udp header: %w (%d bytes)", ErrTruncated, len(buf))
	}
	var h UDPHeader
	h.SrcPort = binary.BigEndian.Uint16(buf[0:2])
	h.DstPort = binary.BigEndian.Uint16(buf[2:4])
	h.Length = binary.BigEndian.Uint16(buf[4:6])
	h.Checksum = binary.BigEndian.Uint16(buf[6:8])
	if int(h.Length) < UDPHeaderLen || int(h.Length) > len(buf) {
		return UDPHeader{}, nil, fmt.Errorf("udp: length %d outside buffer of %d bytes", h.Length, len(buf))
	}
	dgram := buf[:h.Length]
	if h.Checksum != 0 && src.Is4() && dst.Is4() {
		// Recompute with the checksum field zeroed.
		tmp := make([]byte, len(dgram))
		copy(tmp, dgram)
		tmp[6], tmp[7] = 0, 0
		if got := udpChecksum(src, dst, tmp); got != h.Checksum {
			return UDPHeader{}, nil, fmt.Errorf("udp: bad checksum: got 0x%04x want 0x%04x", h.Checksum, got)
		}
	}
	return h, dgram[UDPHeaderLen:], nil
}
