package packet

import (
	"net/netip"
	"sort"
	"time"
)

// StreamID identifies one direction of a TCP flow. Each direction has its
// own sequence space, so each is reassembled as its own stream.
type StreamID struct {
	Src, Dst netip.AddrPort
}

// less orders stream identities deterministically (eviction tie-breaks
// and snapshot export order).
func (a StreamID) less(b StreamID) bool {
	if c := a.Src.Addr().Compare(b.Src.Addr()); c != 0 {
		return c < 0
	}
	if a.Src.Port() != b.Src.Port() {
		return a.Src.Port() < b.Src.Port()
	}
	if c := a.Dst.Addr().Compare(b.Dst.Addr()); c != 0 {
		return c < 0
	}
	return a.Dst.Port() < b.Dst.Port()
}

// maxStreamPending bounds the out-of-order bytes buffered per stream;
// segments that would exceed it are dropped (a real stack's receive
// window closes the same way).
const maxStreamPending = 1 << 18

// streamSeg is one out-of-order byte range waiting for its gap to fill.
type streamSeg struct {
	seq  uint32
	data []byte
}

// streamState is the reassembly state of one stream direction.
type streamState struct {
	next         uint32 // next in-order sequence number expected
	fin          bool   // FIN seen; finSeq is the sequence number past the last byte
	finSeq       uint32
	pending      []streamSeg // out-of-order segments, sorted by seq, non-overlapping
	pendingBytes int
	first        time.Duration // creation time (eviction order)
	last         time.Duration // last activity (expiry)
}

// StreamReassembler reconstructs the in-order byte streams of TCP flows
// from segments observed on the wire. It is the stream-transport sibling
// of the IPv4 fragment Reassembler and follows the same conventions: a
// caller-supplied virtual clock, expiry of idle streams at the top of
// every Push, an optional capacity limit with oldest-first eviction
// (ties broken by stream identity) reported through OnEvict, and
// deterministic state export/import for checkpoints.
//
// Overlap policy: the earlier arrival wins. Bytes already delivered or
// already buffered are never overwritten by a later segment, so a
// retransmission that disagrees with the original cannot rewrite what
// the analyzer saw.
type StreamReassembler struct {
	timeout  time.Duration
	streams  map[StreamID]*streamState
	limit    int // max concurrent streams retained; 0 means unbounded
	evicted  int // streams dropped to respect limit (not timeouts)
	onEvict  func(StreamID)
	onExpire func(StreamID)
}

// NewStreamReassembler returns a StreamReassembler that discards streams
// idle longer than timeout. A non-positive timeout uses
// DefaultReassemblyTimeout.
func NewStreamReassembler(timeout time.Duration) *StreamReassembler {
	if timeout <= 0 {
		timeout = DefaultReassemblyTimeout
	}
	return &StreamReassembler{timeout: timeout, streams: make(map[StreamID]*streamState)}
}

// Pending returns the number of streams currently tracked.
func (r *StreamReassembler) Pending() int { return len(r.streams) }

// SetLimit caps the number of concurrent streams retained at once. When a
// new stream would exceed the cap, the oldest stream is evicted (ties
// broken by stream identity). A non-positive limit means unbounded.
func (r *StreamReassembler) SetLimit(n int) { r.limit = n }

// OnEvict registers a callback invoked with the identity of every stream
// dropped to respect the capacity limit (timeout expiry does not fire it:
// callers track timeouts themselves via the shared virtual clock).
func (r *StreamReassembler) OnEvict(fn func(StreamID)) { r.onEvict = fn }

// OnExpire registers a callback invoked with the identity of every stream
// dropped by idle-timeout expiry, so callers can discard per-stream state
// of their own (framing buffers) on the same deterministic clock.
func (r *StreamReassembler) OnExpire(fn func(StreamID)) { r.onExpire = fn }

// CapacityEvicted reports how many streams were dropped to respect the
// capacity limit.
func (r *StreamReassembler) CapacityEvicted() int { return r.evicted }

func (r *StreamReassembler) evictOldest(keep StreamID) {
	var victim StreamID
	found := false
	for k, st := range r.streams {
		if k == keep {
			continue
		}
		if !found || st.first < r.streams[victim].first ||
			(st.first == r.streams[victim].first && k.less(victim)) {
			victim, found = k, true
		}
	}
	if !found {
		return
	}
	delete(r.streams, victim)
	r.evicted++
	if r.onEvict != nil {
		r.onEvict(victim)
	}
}

// Expire drops streams idle longer than the timeout as of now.
func (r *StreamReassembler) Expire(now time.Duration) {
	for k, st := range r.streams {
		if now-st.last > r.timeout {
			delete(r.streams, k)
			if r.onExpire != nil {
				r.onExpire(k)
			}
		}
	}
}

// Push feeds one TCP segment into the stream identified by id. In-order
// payload bytes — including previously buffered out-of-order segments
// whose gap this segment fills — are handed to deliver in sequence order
// (the slices alias the segment or internal buffers and are only valid
// during the call). Push returns closed=true when the segment tears the
// stream down: an RST, or a FIN whose preceding bytes have all been
// delivered. The caller's per-flow framing state should be discarded when
// a stream closes.
//
// A SYN (re)establishes the stream's initial sequence number; a segment
// for an unknown stream adopts its sequence number as the starting point,
// so monitoring can attach mid-flow.
func (r *StreamReassembler) Push(id StreamID, h TCPHeader, payload []byte, now time.Duration, deliver func([]byte)) (closed bool) {
	r.Expire(now)
	if h.RST() {
		delete(r.streams, id)
		return true
	}
	st, ok := r.streams[id]
	switch {
	case !ok:
		if r.limit > 0 && len(r.streams) >= r.limit {
			r.evictOldest(id)
		}
		st = &streamState{first: now}
		if h.SYN() {
			st.next = h.Seq + 1
		} else {
			st.next = h.Seq
		}
		r.streams[id] = st
	case h.SYN():
		// A fresh SYN resets the direction (new connection reusing the
		// 4-tuple); buffered bytes of the old incarnation are dropped.
		st.next = h.Seq + 1
		st.fin = false
		st.pending = st.pending[:0]
		st.pendingBytes = 0
	}
	st.last = now
	seq := h.Seq
	if h.SYN() {
		seq++ // SYN occupies one sequence number
	}
	if len(payload) > 0 {
		// Trim bytes already delivered.
		if d := int32(st.next - seq); d > 0 {
			if int(d) >= len(payload) {
				payload = nil
			} else {
				payload = payload[d:]
				seq = st.next
			}
		}
	}
	if len(payload) > 0 {
		if seq == st.next && len(st.pending) == 0 {
			// In-order fast path: no buffering, no copy.
			deliver(payload)
			st.next += uint32(len(payload))
		} else if int32(seq-st.next) > 0 {
			r.buffer(st, seq, payload)
		} else {
			// seq == st.next with buffered segments ahead: insert then
			// flush so overlaps resolve against the earlier arrivals.
			r.buffer(st, seq, payload)
		}
		r.flush(st, deliver)
	}
	if h.FIN() {
		st.fin = true
		st.finSeq = seq + uint32(len(payload))
	}
	if st.fin && int32(st.next-st.finSeq) >= 0 {
		delete(r.streams, id)
		return true
	}
	return false
}

// buffer inserts payload at seq into the pending list, trimming it to the
// gaps left by already-buffered segments (earlier arrival wins). The
// bytes are copied; payload may alias a caller buffer.
func (r *StreamReassembler) buffer(st *streamState, seq uint32, payload []byte) {
	for len(payload) > 0 {
		// Find the first existing segment ending after seq.
		i := sort.Search(len(st.pending), func(i int) bool {
			p := st.pending[i]
			return int32(p.seq+uint32(len(p.data))-seq) > 0
		})
		end := seq + uint32(len(payload))
		if i < len(st.pending) && int32(st.pending[i].seq-seq) <= 0 {
			// seq falls inside pending[i]: skip the covered prefix.
			skip := st.pending[i].seq + uint32(len(st.pending[i].data)) - seq
			if int(skip) >= len(payload) {
				return
			}
			payload = payload[skip:]
			seq += skip
			continue
		}
		// seq is in a gap; clip the piece at the next segment's start.
		pieceEnd := end
		if i < len(st.pending) && int32(st.pending[i].seq-pieceEnd) < 0 {
			pieceEnd = st.pending[i].seq
		}
		n := int(pieceEnd - seq)
		if st.pendingBytes+n > maxStreamPending {
			return // over budget: drop, as a closed receive window would
		}
		seg := streamSeg{seq: seq, data: append([]byte(nil), payload[:n]...)}
		st.pending = append(st.pending, streamSeg{})
		copy(st.pending[i+1:], st.pending[i:])
		st.pending[i] = seg
		st.pendingBytes += n
		payload = payload[n:]
		seq = pieceEnd
	}
}

// flush delivers buffered segments that have become in-order.
func (r *StreamReassembler) flush(st *streamState, deliver func([]byte)) {
	for len(st.pending) > 0 {
		p := st.pending[0]
		if d := int32(st.next - p.seq); d > 0 {
			// Head overlaps delivered bytes (possible after a SYN reset).
			if int(d) >= len(p.data) {
				st.pendingBytes -= len(p.data)
				st.pending = st.pending[1:]
				continue
			}
			p.data = p.data[d:]
			p.seq = st.next
		}
		if p.seq != st.next {
			return
		}
		deliver(p.data)
		st.next += uint32(len(p.data))
		st.pendingBytes -= len(st.pending[0].data)
		st.pending = st.pending[1:]
	}
}

// TCPStreamSeg is one exported out-of-order byte range.
type TCPStreamSeg struct {
	Seq  uint32
	Data []byte
}

// TCPStreamState is the exported state of one tracked stream direction,
// used to checkpoint and restore reassembly across process restarts.
type TCPStreamState struct {
	ID     StreamID
	Next   uint32
	Fin    bool
	FinSeq uint32
	First  time.Duration
	Last   time.Duration
	Segs   []TCPStreamSeg
}

// ExportStreams returns every tracked stream in deterministic order
// (sorted by identity). Buffered bytes are copied.
func (r *StreamReassembler) ExportStreams() []TCPStreamState {
	keys := make([]StreamID, 0, len(r.streams))
	for k := range r.streams {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	out := make([]TCPStreamState, len(keys))
	for i, k := range keys {
		st := r.streams[k]
		es := TCPStreamState{
			ID: k, Next: st.next, Fin: st.fin, FinSeq: st.finSeq,
			First: st.first, Last: st.last,
		}
		for _, p := range st.pending {
			es.Segs = append(es.Segs, TCPStreamSeg{Seq: p.seq, Data: append([]byte(nil), p.data...)})
		}
		out[i] = es
	}
	return out
}

// ImportStreams replaces the stream table with the given exported state
// and sets the capacity-eviction counter (both usually from a snapshot).
// Segments are re-inserted through the overlap-trimming path, so a
// hand-crafted state that violates the sorted/non-overlapping invariant
// is sanitized rather than trusted.
func (r *StreamReassembler) ImportStreams(streams []TCPStreamState, evicted int) {
	clear(r.streams)
	for _, es := range streams {
		st := &streamState{
			next: es.Next, fin: es.Fin, finSeq: es.FinSeq,
			first: es.First, last: es.Last,
		}
		for _, sg := range es.Segs {
			if len(sg.Data) == 0 {
				continue
			}
			seq, data := sg.Seq, sg.Data
			if d := int32(st.next - seq); d > 0 {
				if int(d) >= len(data) {
					continue
				}
				seq, data = st.next, data[d:]
			}
			r.buffer(st, seq, data)
		}
		r.streams[es.ID] = st
	}
	r.evicted = evicted
}
