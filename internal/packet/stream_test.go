package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

func sid(srcPort, dstPort uint16) StreamID {
	return StreamID{
		Src: netip.AddrPortFrom(netip.MustParseAddr("10.0.0.1"), srcPort),
		Dst: netip.AddrPortFrom(netip.MustParseAddr("10.0.0.2"), dstPort),
	}
}

type streamSink struct{ got []byte }

func (s *streamSink) deliver(b []byte) { s.got = append(s.got, b...) }

func TestStreamReassemblyInOrder(t *testing.T) {
	r := NewStreamReassembler(0)
	id := sid(1000, 5060)
	var sink streamSink
	r.Push(id, TCPHeader{Seq: 100, Flags: TCPFlagSYN}, nil, 0, sink.deliver)
	r.Push(id, TCPHeader{Seq: 101, Flags: TCPFlagACK}, []byte("hello "), 1, sink.deliver)
	r.Push(id, TCPHeader{Seq: 107, Flags: TCPFlagACK}, []byte("world"), 2, sink.deliver)
	if string(sink.got) != "hello world" {
		t.Errorf("delivered %q", sink.got)
	}
	if r.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", r.Pending())
	}
}

func TestStreamReassemblyOutOfOrder(t *testing.T) {
	r := NewStreamReassembler(0)
	id := sid(1000, 5060)
	var sink streamSink
	r.Push(id, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 0, sink.deliver)
	r.Push(id, TCPHeader{Seq: 7}, []byte("world"), 1, sink.deliver)
	if len(sink.got) != 0 {
		t.Fatalf("out-of-order segment delivered early: %q", sink.got)
	}
	r.Push(id, TCPHeader{Seq: 1}, []byte("hello "), 2, sink.deliver)
	if string(sink.got) != "hello world" {
		t.Errorf("delivered %q", sink.got)
	}
}

func TestStreamReassemblyOverlapEarlierWins(t *testing.T) {
	r := NewStreamReassembler(0)
	id := sid(1, 2)
	var sink streamSink
	// Buffer "BBBB" at seq 14 out of order, then send 10..18 in order with
	// conflicting bytes: the buffered copy must win for 14..17.
	r.Push(id, TCPHeader{Seq: 9, Flags: TCPFlagSYN}, nil, 0, sink.deliver)
	r.Push(id, TCPHeader{Seq: 14}, []byte("BBBB"), 1, sink.deliver)
	r.Push(id, TCPHeader{Seq: 10}, []byte("aaaaXXXXc"), 2, sink.deliver)
	if string(sink.got) != "aaaaBBBBc" {
		t.Errorf("delivered %q, want earlier arrival to win overlap", sink.got)
	}
}

func TestStreamReassemblyRetransmission(t *testing.T) {
	r := NewStreamReassembler(0)
	id := sid(1, 2)
	var sink streamSink
	r.Push(id, TCPHeader{Seq: 10}, []byte("abcdef"), 0, sink.deliver)
	// Full retransmission plus two new bytes; only the new tail arrives.
	r.Push(id, TCPHeader{Seq: 10}, []byte("ZZZZZZgh"), 1, sink.deliver)
	if string(sink.got) != "abcdefgh" {
		t.Errorf("delivered %q", sink.got)
	}
}

func TestStreamFINTeardown(t *testing.T) {
	r := NewStreamReassembler(0)
	id := sid(1, 2)
	var sink streamSink
	r.Push(id, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 0, sink.deliver)
	closed := r.Push(id, TCPHeader{Seq: 1, Flags: TCPFlagFIN}, []byte("bye"), 1, sink.deliver)
	if !closed {
		t.Error("FIN with all bytes delivered did not close the stream")
	}
	if r.Pending() != 0 {
		t.Errorf("Pending = %d after FIN", r.Pending())
	}
	if string(sink.got) != "bye" {
		t.Errorf("delivered %q", sink.got)
	}
}

func TestStreamFINWaitsForGap(t *testing.T) {
	r := NewStreamReassembler(0)
	id := sid(1, 2)
	var sink streamSink
	r.Push(id, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 0, sink.deliver)
	closed := r.Push(id, TCPHeader{Seq: 4, Flags: TCPFlagFIN}, []byte("def"), 1, sink.deliver)
	if closed {
		t.Error("FIN closed the stream with a gap outstanding")
	}
	closed = r.Push(id, TCPHeader{Seq: 1}, []byte("abc"), 2, sink.deliver)
	if !closed {
		t.Error("filling the gap did not complete the pending FIN")
	}
	if string(sink.got) != "abcdef" {
		t.Errorf("delivered %q", sink.got)
	}
}

func TestStreamRSTTeardown(t *testing.T) {
	r := NewStreamReassembler(0)
	id := sid(1, 2)
	var sink streamSink
	r.Push(id, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 0, sink.deliver)
	r.Push(id, TCPHeader{Seq: 1}, []byte("partial"), 1, sink.deliver)
	closed := r.Push(id, TCPHeader{Seq: 8, Flags: TCPFlagRST}, nil, 2, sink.deliver)
	if !closed || r.Pending() != 0 {
		t.Errorf("RST: closed=%v pending=%d", closed, r.Pending())
	}
}

func TestStreamExpiry(t *testing.T) {
	r := NewStreamReassembler(time.Second)
	id := sid(1, 2)
	var sink streamSink
	r.Push(id, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 0, sink.deliver)
	r.Push(sid(3, 4), TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 5*time.Second, sink.deliver)
	if r.Pending() != 1 {
		t.Errorf("Pending = %d, want idle stream expired", r.Pending())
	}
}

func TestStreamCapacityEviction(t *testing.T) {
	r := NewStreamReassembler(0)
	r.SetLimit(2)
	var evicted []StreamID
	r.OnEvict(func(id StreamID) { evicted = append(evicted, id) })
	var sink streamSink
	a, b, c := sid(1, 2), sid(3, 4), sid(5, 6)
	r.Push(a, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 0, sink.deliver)
	r.Push(b, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 1, sink.deliver)
	r.Push(c, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 2, sink.deliver)
	if r.CapacityEvicted() != 1 || len(evicted) != 1 || evicted[0] != a {
		t.Errorf("evicted %v (count %d), want oldest %v", evicted, r.CapacityEvicted(), a)
	}
	if r.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", r.Pending())
	}
}

func TestStreamExportImportMidStream(t *testing.T) {
	mk := func() (*StreamReassembler, StreamID) {
		r := NewStreamReassembler(0)
		return r, sid(1000, 5060)
	}
	// Uninterrupted run.
	r1, id := mk()
	var s1 streamSink
	r1.Push(id, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 0, s1.deliver)
	r1.Push(id, TCPHeader{Seq: 1}, []byte("part one "), 1, s1.deliver)
	r1.Push(id, TCPHeader{Seq: 20}, []byte("gap"), 2, s1.deliver)
	r1.Push(id, TCPHeader{Seq: 10}, []byte("part two "), 3, s1.deliver)
	r1.Push(id, TCPHeader{Seq: 23}, []byte(" end"), 4, s1.deliver)

	// Checkpointed run: export after the out-of-order segment is buffered.
	r2, _ := mk()
	var s2 streamSink
	r2.Push(id, TCPHeader{Seq: 0, Flags: TCPFlagSYN}, nil, 0, s2.deliver)
	r2.Push(id, TCPHeader{Seq: 1}, []byte("part one "), 1, s2.deliver)
	r2.Push(id, TCPHeader{Seq: 20}, []byte("gap"), 2, s2.deliver)
	exported := r2.ExportStreams()
	if len(exported) != 1 || len(exported[0].Segs) != 1 {
		t.Fatalf("export: %+v", exported)
	}

	r3 := NewStreamReassembler(0)
	r3.ImportStreams(exported, 0)
	r3.Push(id, TCPHeader{Seq: 10}, []byte("part two "), 3, s2.deliver)
	r3.Push(id, TCPHeader{Seq: 23}, []byte(" end"), 4, s2.deliver)

	if !bytes.Equal(s1.got, s2.got) {
		t.Errorf("restored run delivered %q, uninterrupted %q", s2.got, s1.got)
	}
}

// replayScript drives one reassembler through a fuzz script, optionally
// export/importing into a fresh reassembler at checkpoint (segment index;
// <0 disables). It returns the concatenated delivered bytes.
func replayScript(script []byte, checkpoint int) []byte {
	r := NewStreamReassembler(0)
	r.SetLimit(4)
	var delivered []byte
	deliver := func(b []byte) { delivered = append(delivered, b...) }
	step := 0
	for len(script) >= 3 {
		if step == checkpoint {
			fresh := NewStreamReassembler(0)
			fresh.SetLimit(4)
			fresh.ImportStreams(r.ExportStreams(), r.CapacityEvicted())
			r = fresh
		}
		step++
		op, n := script[0], int(script[1]%8)+1
		if len(script) < 2+n {
			break
		}
		payload := script[2 : 2+n]
		script = script[2+n:]
		h := TCPHeader{Seq: uint32(op >> 3)}
		switch op & 3 {
		case 1:
			h.Flags = TCPFlagSYN
		case 2:
			h.Flags = TCPFlagFIN
		case 3:
			h.Flags = TCPFlagRST
		}
		id := sid(1, 2)
		if op&4 != 0 {
			id = sid(3, 4)
		}
		r.Push(id, h, payload, time.Duration(step), deliver)
	}
	return delivered
}

// FuzzTCPReassembly feeds arbitrary segment sequences (out-of-order,
// overlapping, SYN/FIN/RST interleaved, two flows, capacity pressure)
// through the reassembler, checking it never panics, is deterministic,
// and that a mid-script export/import round-trip delivers the identical
// byte stream — no bytes invented or lost relative to the uninterrupted
// run.
func FuzzTCPReassembly(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 2, 3, 10, 1, 4, 5, 6}, uint8(1))
	f.Add([]byte{2, 0, 5, 1, 2, 3, 0, 0, 9, 9, 9, 1, 0, 7, 7}, uint8(2))
	f.Add([]byte{9, 3, 1, 2, 3, 4, 17, 3, 5, 6, 7, 8, 1, 1, 9}, uint8(0))
	f.Fuzz(func(t *testing.T, script []byte, cut uint8) {
		base := replayScript(script, -1)
		again := replayScript(script, -1)
		if !bytes.Equal(base, again) {
			t.Fatalf("nondeterministic delivery: %q vs %q", base, again)
		}
		restored := replayScript(script, int(cut%16))
		if !bytes.Equal(base, restored) {
			t.Fatalf("export/import changed delivery: %q vs %q", restored, base)
		}
	})
}
