package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// TCP flag bits (RFC 9293 §3.1).
const (
	TCPFlagFIN = 1 << 0
	TCPFlagSYN = 1 << 1
	TCPFlagRST = 1 << 2
	TCPFlagPSH = 1 << 3
	TCPFlagACK = 1 << 4
)

// TCPHeader is a decoded TCP header.
type TCPHeader struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words (5..15)
	Flags      uint8
	Window     uint16
	Checksum   uint16
	Urgent     uint16
}

// FIN reports whether the FIN flag is set.
func (h TCPHeader) FIN() bool { return h.Flags&TCPFlagFIN != 0 }

// SYN reports whether the SYN flag is set.
func (h TCPHeader) SYN() bool { return h.Flags&TCPFlagSYN != 0 }

// RST reports whether the RST flag is set.
func (h TCPHeader) RST() bool { return h.Flags&TCPFlagRST != 0 }

// tcpPseudoSum computes the partial checksum of the IPv4 pseudo-header
// for a TCP segment of segLen bytes (header + payload).
func tcpPseudoSum(src, dst netip.Addr, segLen int) uint32 {
	s, d := src.As4(), dst.As4()
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(s[0:2]))
	sum += uint32(binary.BigEndian.Uint16(s[2:4]))
	sum += uint32(binary.BigEndian.Uint16(d[0:2]))
	sum += uint32(binary.BigEndian.Uint16(d[2:4]))
	sum += uint32(ProtoTCP)
	sum += uint32(segLen)
	return sum
}

// tcpChecksum computes the TCP checksum over the pseudo-header and segment.
func tcpChecksum(src, dst netip.Addr, seg []byte) uint16 {
	sum := tcpPseudoSum(src, dst, len(seg))
	for i := 0; i+1 < len(seg); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(seg[i : i+2]))
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// verifyTCPChecksum reports whether seg's stored checksum matches the one
// computed over the pseudo-header and segment. The checksum field (bytes
// 16..17) is treated as zero while summing, so no scratch copy is needed.
func verifyTCPChecksum(src, dst netip.Addr, seg []byte, want uint16) bool {
	sum := tcpPseudoSum(src, dst, len(seg))
	for i := 0; i+1 < len(seg); i += 2 {
		if i == 16 {
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(seg[i : i+2]))
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum) == want
}

// MarshalTCP serializes a TCP segment (no options) with a valid checksum.
// The src and dst IPs are needed for the pseudo-header only.
func MarshalTCP(src, dst netip.Addr, h TCPHeader, payload []byte) []byte {
	buf := make([]byte, TCPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(buf[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], h.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], h.Seq)
	binary.BigEndian.PutUint32(buf[8:12], h.Ack)
	buf[12] = 5 << 4 // data offset: 5 words, no options
	buf[13] = h.Flags
	binary.BigEndian.PutUint16(buf[14:16], h.Window)
	binary.BigEndian.PutUint16(buf[18:20], h.Urgent)
	copy(buf[TCPHeaderLen:], payload)
	binary.BigEndian.PutUint16(buf[16:18], tcpChecksum(src, dst, buf))
	return buf
}

// PeekTCP decodes a TCP segment without allocating: header fields are
// read in place, the options region is skipped per the data offset, and
// the checksum (when src and dst are IPv4) is verified in place. The
// returned payload aliases buf. It is the stream-transport sibling of
// PeekUDP: frames it rejects are exactly frames a conforming stack would
// discard.
func PeekTCP(src, dst netip.Addr, buf []byte) (TCPHeader, []byte, error) {
	if len(buf) < TCPHeaderLen {
		return TCPHeader{}, nil, fmt.Errorf("tcp header: %w (%d bytes)", ErrTruncated, len(buf))
	}
	var h TCPHeader
	h.SrcPort = binary.BigEndian.Uint16(buf[0:2])
	h.DstPort = binary.BigEndian.Uint16(buf[2:4])
	h.Seq = binary.BigEndian.Uint32(buf[4:8])
	h.Ack = binary.BigEndian.Uint32(buf[8:12])
	h.DataOffset = buf[12] >> 4
	h.Flags = buf[13]
	h.Window = binary.BigEndian.Uint16(buf[14:16])
	h.Checksum = binary.BigEndian.Uint16(buf[16:18])
	h.Urgent = binary.BigEndian.Uint16(buf[18:20])
	hdrLen := int(h.DataOffset) * 4
	if hdrLen < TCPHeaderLen {
		return TCPHeader{}, nil, fmt.Errorf("tcp: data offset %d below minimum", h.DataOffset)
	}
	if hdrLen > len(buf) {
		return TCPHeader{}, nil, fmt.Errorf("tcp: data offset %d beyond segment of %d bytes", h.DataOffset, len(buf))
	}
	if src.Is4() && dst.Is4() {
		if !verifyTCPChecksum(src, dst, buf, h.Checksum) {
			return TCPHeader{}, nil, fmt.Errorf("tcp: bad checksum 0x%04x", h.Checksum)
		}
	}
	return h, buf[hdrLen:], nil
}

// TCPFrameSpec describes a run of TCP segments to be wrapped in IPv4 and
// Ethernet framing.
type TCPFrameSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     netip.Addr
	SrcPort, DstPort uint16
	Seq              uint32 // sequence number of the first payload byte
	Ack              uint32
	Flags            uint8  // applied to every segment; FIN/PSH only on the last
	Window           uint16 // 0 means 65535
	IPID             uint16 // first IP identification value; +1 per segment
	TTL              uint8  // 0 means 64
	Payload          []byte
}

// BuildTCPFrames encodes payload as one or more TCP/IPv4/Ethernet frames,
// segmenting at the TCP layer so each IP packet fits mtu (0 means
// DefaultMTU) without IP fragmentation. An empty payload yields exactly
// one segment (pure SYN/ACK/FIN/RST control frames). FIN and PSH, when
// requested, are set only on the final segment; all other flag bits apply
// to every segment. Each segment carries Seq advanced by the payload
// bytes before it and IPID advanced by its index.
func BuildTCPFrames(spec TCPFrameSpec, mtu int) ([][]byte, error) {
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	mss := mtu - IPv4HeaderLen - TCPHeaderLen
	if mss <= 0 {
		return nil, fmt.Errorf("build tcp frames: mtu %d leaves no segment space", mtu)
	}
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	window := spec.Window
	if window == 0 {
		window = 65535
	}
	var frames [][]byte
	offset, ipid := 0, spec.IPID
	for {
		end := offset + mss
		if end > len(spec.Payload) {
			end = len(spec.Payload)
		}
		last := end == len(spec.Payload)
		flags := spec.Flags
		if !last {
			flags &^= TCPFlagFIN | TCPFlagPSH
		}
		seg := MarshalTCP(spec.SrcIP, spec.DstIP, TCPHeader{
			SrcPort: spec.SrcPort,
			DstPort: spec.DstPort,
			Seq:     spec.Seq + uint32(offset),
			Ack:     spec.Ack,
			Flags:   flags,
			Window:  window,
		}, spec.Payload[offset:end])
		iph := IPv4Header{
			ID:       ipid,
			TTL:      ttl,
			Protocol: ProtoTCP,
			Src:      spec.SrcIP,
			Dst:      spec.DstIP,
		}
		pkts, err := FragmentIPv4(&iph, seg, mtu)
		if err != nil {
			return nil, fmt.Errorf("build tcp frames: %w", err)
		}
		for _, p := range pkts {
			frames = append(frames, MarshalEthernet(&EthernetFrame{
				Dst:     spec.DstMAC,
				Src:     spec.SrcMAC,
				Type:    EtherTypeIPv4,
				Payload: p,
			}))
		}
		ipid++
		if last {
			return frames, nil
		}
		offset = end
	}
}
