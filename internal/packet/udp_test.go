package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("REGISTER sip:proxy SIP/2.0\r\n")
	dgram, err := MarshalUDP(testSrcIP, testDstIP, 5060, 5060, payload)
	if err != nil {
		t.Fatalf("MarshalUDP: %v", err)
	}
	h, gp, err := UnmarshalUDP(testSrcIP, testDstIP, dgram)
	if err != nil {
		t.Fatalf("UnmarshalUDP: %v", err)
	}
	if h.SrcPort != 5060 || h.DstPort != 5060 {
		t.Errorf("ports = %d→%d, want 5060→5060", h.SrcPort, h.DstPort)
	}
	if int(h.Length) != UDPHeaderLen+len(payload) {
		t.Errorf("Length = %d, want %d", h.Length, UDPHeaderLen+len(payload))
	}
	if !bytes.Equal(gp, payload) {
		t.Errorf("payload mismatch: got %q", gp)
	}
}

func TestUDPChecksumValidation(t *testing.T) {
	dgram, err := MarshalUDP(testSrcIP, testDstIP, 1000, 2000, []byte("abc"))
	if err != nil {
		t.Fatalf("MarshalUDP: %v", err)
	}
	dgram[len(dgram)-1] ^= 0xff
	if _, _, err := UnmarshalUDP(testSrcIP, testDstIP, dgram); err == nil {
		t.Error("UnmarshalUDP accepted corrupted payload")
	}
}

func TestUDPZeroChecksumAccepted(t *testing.T) {
	dgram, err := MarshalUDP(testSrcIP, testDstIP, 1, 2, []byte("xyz"))
	if err != nil {
		t.Fatalf("MarshalUDP: %v", err)
	}
	dgram[6], dgram[7] = 0, 0 // checksum "not computed"
	if _, _, err := UnmarshalUDP(testSrcIP, testDstIP, dgram); err != nil {
		t.Errorf("UnmarshalUDP rejected zero checksum: %v", err)
	}
}

func TestUDPErrors(t *testing.T) {
	t.Run("truncated", func(t *testing.T) {
		if _, _, err := UnmarshalUDP(testSrcIP, testDstIP, make([]byte, 4)); err == nil {
			t.Error("want error for 4-byte buffer")
		}
	})
	t.Run("bad length field", func(t *testing.T) {
		dgram, _ := MarshalUDP(testSrcIP, testDstIP, 1, 2, []byte("hello"))
		dgram[4], dgram[5] = 0xff, 0xff
		if _, _, err := UnmarshalUDP(testSrcIP, testDstIP, dgram); err == nil {
			t.Error("want error for length > buffer")
		}
	})
	t.Run("oversize", func(t *testing.T) {
		if _, err := MarshalUDP(testSrcIP, testDstIP, 1, 2, make([]byte, 0x10000)); err == nil {
			t.Error("want error for 64KiB payload")
		}
	})
}

func TestUDPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		dgram, err := MarshalUDP(testSrcIP, testDstIP, sp, dp, payload)
		if err != nil {
			return false
		}
		h, gp, err := UnmarshalUDP(testSrcIP, testDstIP, dgram)
		return err == nil && h.SrcPort == sp && h.DstPort == dp && bytes.Equal(gp, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPeekUDPMatchesUnmarshal pins PeekUDP to UnmarshalUDP: both must
// accept and reject exactly the same datagrams, byte for byte, since the
// sharded router classifies with PeekUDP while shards decode with
// UnmarshalUDP.
func TestPeekUDPMatchesUnmarshal(t *testing.T) {
	base, err := MarshalUDP(testSrcIP, testDstIP, 5060, 10000, []byte("some payload x"))
	if err != nil {
		t.Fatalf("MarshalUDP: %v", err)
	}
	cases := map[string][]byte{
		"valid":          base,
		"truncated":      base[:4],
		"header only":    base[:8],
		"corrupt body":   flipLast(base),
		"zero checksum":  zeroChecksum(base),
		"bad length":     withBytes(base, 4, 0xff, 0xff),
		"short length":   withBytes(base, 4, 0x00, 0x03),
		"odd length":     append(append([]byte{}, base...), 0x7f),
		"corrupt cksum":  withBytes(base, 6, 0x12, 0x34),
		"empty datagram": {},
	}
	for name, dgram := range cases {
		hU, pU, errU := UnmarshalUDP(testSrcIP, testDstIP, dgram)
		hP, pP, errP := PeekUDP(testSrcIP, testDstIP, dgram)
		if (errU == nil) != (errP == nil) {
			t.Errorf("%s: UnmarshalUDP err=%v, PeekUDP err=%v", name, errU, errP)
			continue
		}
		if errU != nil {
			continue
		}
		if hU != hP || !bytes.Equal(pU, pP) {
			t.Errorf("%s: decode mismatch: %+v/%q vs %+v/%q", name, hU, pU, hP, pP)
		}
	}
}

func TestPeekUDPQuickEquivalence(t *testing.T) {
	f := func(buf []byte) bool {
		_, pU, errU := UnmarshalUDP(testSrcIP, testDstIP, buf)
		_, pP, errP := PeekUDP(testSrcIP, testDstIP, buf)
		if (errU == nil) != (errP == nil) {
			return false
		}
		return errU != nil || bytes.Equal(pU, pP)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func flipLast(b []byte) []byte {
	out := append([]byte{}, b...)
	out[len(out)-1] ^= 0xff
	return out
}

func zeroChecksum(b []byte) []byte {
	return withBytes(b, 6, 0, 0)
}

func withBytes(b []byte, at int, vals ...byte) []byte {
	out := append([]byte{}, b...)
	copy(out[at:], vals)
	return out
}

func TestBuildUDPFramesRoundTrip(t *testing.T) {
	spec := UDPFrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: testSrcIP, DstIP: testDstIP,
		SrcPort: 5060, DstPort: 5060,
		IPID:    42,
		Payload: bytes.Repeat([]byte("INVITE "), 400), // 2800 bytes → fragments
	}
	frames, err := BuildUDPFrames(spec, 0)
	if err != nil {
		t.Fatalf("BuildUDPFrames: %v", err)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2 (2808-byte datagram over 1500 MTU)", len(frames))
	}
	r := NewReassembler(0)
	var full []byte
	for i, fr := range frames {
		ef, err := UnmarshalEthernet(fr)
		if err != nil {
			t.Fatalf("frame %d ethernet: %v", i, err)
		}
		iph, ipp, err := UnmarshalIPv4(ef.Payload)
		if err != nil {
			t.Fatalf("frame %d ipv4: %v", i, err)
		}
		h, p, done, err := r.Insert(iph, ipp, 0)
		if err != nil {
			t.Fatalf("frame %d reassembly: %v", i, err)
		}
		if done {
			if h.Protocol != ProtoUDP {
				t.Fatalf("protocol = %d, want UDP", h.Protocol)
			}
			full = p
		}
	}
	if full == nil {
		t.Fatal("reassembly never completed")
	}
	_, gp, err := UnmarshalUDP(testSrcIP, testDstIP, full)
	if err != nil {
		t.Fatalf("UnmarshalUDP after reassembly: %v", err)
	}
	if !bytes.Equal(gp, spec.Payload) {
		t.Error("round-tripped payload differs")
	}
}
