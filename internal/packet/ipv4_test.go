package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	testSrcIP = netip.MustParseAddr("10.0.0.1")
	testDstIP = netip.MustParseAddr("10.0.0.2")
)

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4Header{
		TOS:      0x10,
		ID:       0x1234,
		Flags:    FlagDF,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      testSrcIP,
		Dst:      testDstIP,
	}
	payload := []byte("the quick brown fox")
	buf, err := MarshalIPv4(&h, payload)
	if err != nil {
		t.Fatalf("MarshalIPv4: %v", err)
	}
	gh, gp, err := UnmarshalIPv4(buf)
	if err != nil {
		t.Fatalf("UnmarshalIPv4: %v", err)
	}
	if gh.Src != h.Src || gh.Dst != h.Dst || gh.ID != h.ID || gh.TOS != h.TOS ||
		gh.TTL != h.TTL || gh.Protocol != h.Protocol || gh.Flags != h.Flags {
		t.Errorf("header mismatch: got %+v want %+v", gh, h)
	}
	if !bytes.Equal(gp, payload) {
		t.Errorf("payload mismatch: got %q want %q", gp, payload)
	}
	if int(gh.TotalLen) != IPv4HeaderLen+len(payload) {
		t.Errorf("TotalLen = %d, want %d", gh.TotalLen, IPv4HeaderLen+len(payload))
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	h := IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
	buf, err := MarshalIPv4(&h, []byte("x"))
	if err != nil {
		t.Fatalf("MarshalIPv4: %v", err)
	}
	buf[8]++ // corrupt TTL without fixing checksum
	if _, _, err := UnmarshalIPv4(buf); err == nil {
		t.Error("UnmarshalIPv4 accepted corrupted header")
	}
}

func TestIPv4Errors(t *testing.T) {
	t.Run("truncated", func(t *testing.T) {
		if _, _, err := UnmarshalIPv4(make([]byte, 10)); err == nil {
			t.Error("want error for short buffer")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		h := IPv4Header{TTL: 1, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
		buf, _ := MarshalIPv4(&h, nil)
		buf[0] = 6<<4 | 5
		if _, _, err := UnmarshalIPv4(buf); err == nil {
			t.Error("want error for version 6")
		}
	})
	t.Run("non-ipv4 addr", func(t *testing.T) {
		h := IPv4Header{Src: netip.MustParseAddr("::1"), Dst: testDstIP}
		if _, err := MarshalIPv4(&h, nil); err == nil {
			t.Error("want error for IPv6 source")
		}
	})
	t.Run("oversize payload", func(t *testing.T) {
		h := IPv4Header{TTL: 1, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
		if _, err := MarshalIPv4(&h, make([]byte, 0x10000)); err == nil {
			t.Error("want error for 64KiB+ payload")
		}
	})
}

func TestFragmentIPv4SingleFits(t *testing.T) {
	h := IPv4Header{ID: 7, TTL: 64, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
	pkts, err := FragmentIPv4(&h, make([]byte, 100), 1500)
	if err != nil {
		t.Fatalf("FragmentIPv4: %v", err)
	}
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
	gh, _, err := UnmarshalIPv4(pkts[0])
	if err != nil {
		t.Fatalf("UnmarshalIPv4: %v", err)
	}
	if gh.MoreFragments() || gh.FragOffset != 0 {
		t.Errorf("unfragmented packet has MF=%v off=%d", gh.MoreFragments(), gh.FragOffset)
	}
}

func TestFragmentIPv4Splits(t *testing.T) {
	h := IPv4Header{ID: 9, TTL: 64, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	const mtu = 576
	pkts, err := FragmentIPv4(&h, payload, mtu)
	if err != nil {
		t.Fatalf("FragmentIPv4: %v", err)
	}
	if len(pkts) < 2 {
		t.Fatalf("got %d packets, want >= 2", len(pkts))
	}
	var rebuilt []byte
	for i, p := range pkts {
		if len(p) > mtu {
			t.Errorf("fragment %d is %d bytes, exceeds mtu %d", i, len(p), mtu)
		}
		gh, gp, err := UnmarshalIPv4(p)
		if err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		last := i == len(pkts)-1
		if gh.MoreFragments() == last {
			t.Errorf("fragment %d: MF=%v, want %v", i, gh.MoreFragments(), !last)
		}
		if int(gh.FragOffset)*8 != len(rebuilt) {
			t.Errorf("fragment %d: offset %d, want %d", i, int(gh.FragOffset)*8, len(rebuilt))
		}
		rebuilt = append(rebuilt, gp...)
	}
	if !bytes.Equal(rebuilt, payload) {
		t.Error("concatenated fragments do not equal original payload")
	}
}

func TestFragmentIPv4DFError(t *testing.T) {
	h := IPv4Header{Flags: FlagDF, TTL: 64, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
	if _, err := FragmentIPv4(&h, make([]byte, 3000), 576); err == nil {
		t.Error("want error fragmenting with DF set")
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos, ttl uint8, id uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		h := IPv4Header{TOS: tos, TTL: ttl, ID: id, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
		buf, err := MarshalIPv4(&h, payload)
		if err != nil {
			return false
		}
		gh, gp, err := UnmarshalIPv4(buf)
		return err == nil && gh.TOS == tos && gh.TTL == ttl && gh.ID == id && bytes.Equal(gp, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksum16(t *testing.T) {
	// Example from RFC 1071 section 3: verifying a packet including its
	// checksum yields zero.
	h := IPv4Header{TTL: 17, Protocol: ProtoTCP, Src: testSrcIP, Dst: testDstIP}
	buf, err := MarshalIPv4(&h, nil)
	if err != nil {
		t.Fatalf("MarshalIPv4: %v", err)
	}
	if got := checksum16(buf[:IPv4HeaderLen]); got != 0 {
		t.Errorf("checksum over header incl. checksum = %#x, want 0", got)
	}
}
