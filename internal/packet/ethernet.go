package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is the all-ones broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String returns the canonical colon-separated hex form, e.g. "02:00:00:00:00:01".
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// EtherType identifies the protocol carried in an Ethernet frame.
type EtherType uint16

// EtherType values used in this codebase.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeARP  EtherType = 0x0806
)

// String returns a human-readable name for the EtherType.
func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	default:
		return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
	}
}

// EthernetHeaderLen is the length of an Ethernet II header in bytes.
const EthernetHeaderLen = 14

// EthernetFrame is a decoded Ethernet II frame.
type EthernetFrame struct {
	Dst     MAC
	Src     MAC
	Type    EtherType
	Payload []byte
}

// ErrTruncated reports that a buffer is too short to contain the
// structure being decoded.
var ErrTruncated = errors.New("packet: truncated")

// MarshalEthernet serializes the frame. The payload is appended verbatim;
// no minimum-frame padding or FCS is added (the simulated network does
// not model them).
func MarshalEthernet(f *EthernetFrame) []byte {
	buf := make([]byte, EthernetHeaderLen+len(f.Payload))
	copy(buf[0:6], f.Dst[:])
	copy(buf[6:12], f.Src[:])
	binary.BigEndian.PutUint16(buf[12:14], uint16(f.Type))
	copy(buf[EthernetHeaderLen:], f.Payload)
	return buf
}

// UnmarshalEthernet decodes an Ethernet II frame. The returned Payload
// aliases buf.
func UnmarshalEthernet(buf []byte) (EthernetFrame, error) {
	if len(buf) < EthernetHeaderLen {
		return EthernetFrame{}, fmt.Errorf("ethernet header: %w (%d bytes)", ErrTruncated, len(buf))
	}
	var f EthernetFrame
	copy(f.Dst[:], buf[0:6])
	copy(f.Src[:], buf[6:12])
	f.Type = EtherType(binary.BigEndian.Uint16(buf[12:14]))
	f.Payload = buf[EthernetHeaderLen:]
	return f, nil
}
