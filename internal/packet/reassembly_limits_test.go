package packet

import (
	"bytes"
	"testing"
	"time"
)

// firstFragment builds the opening fragment of a stream that will stay
// incomplete, opening (and holding) one reassembly buffer on Insert.
func firstFragment(t *testing.T, id uint16) (IPv4Header, []byte) {
	t.Helper()
	payload := bytes.Repeat([]byte{0x5c}, 1200)
	frags := fragmentsFor(t, id, payload, 576)
	if len(frags) < 2 {
		t.Fatalf("payload did not fragment (got %d pieces)", len(frags))
	}
	return frags[0].h, frags[0].p
}

func TestReassemblerCapacityEvictsOldest(t *testing.T) {
	r := NewReassembler(time.Hour)
	r.SetLimit(2)
	var evicted []FragID
	r.OnEvict(func(id FragID) { evicted = append(evicted, id) })

	for i, at := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		h, p := firstFragment(t, uint16(i+1))
		if _, _, done, err := r.Insert(h, p, at); err != nil || done {
			t.Fatalf("Insert stream %d: done=%v err=%v", i+1, done, err)
		}
	}
	if r.Pending() != 2 {
		t.Errorf("Pending() = %d at the cap, want 2", r.Pending())
	}
	if r.CapacityEvicted() != 1 {
		t.Errorf("CapacityEvicted() = %d, want 1", r.CapacityEvicted())
	}
	if len(evicted) != 1 || evicted[0].ID != 1 {
		t.Errorf("OnEvict saw %v, want exactly the oldest stream (ID 1)", evicted)
	}
}

func TestReassemblerCapacityTieBreaksOnIdentity(t *testing.T) {
	r := NewReassembler(time.Hour)
	r.SetLimit(2)
	var evicted []FragID
	r.OnEvict(func(id FragID) { evicted = append(evicted, id) })

	// Two streams opened at the same instant: identity order (here the
	// smaller ID, all else equal) picks the victim, not map iteration.
	for _, id := range []uint16{9, 4} {
		h, p := firstFragment(t, id)
		if _, _, _, err := r.Insert(h, p, 0); err != nil {
			t.Fatalf("Insert stream %d: %v", id, err)
		}
	}
	h, p := firstFragment(t, 7)
	if _, _, _, err := r.Insert(h, p, 5*time.Millisecond); err != nil {
		t.Fatalf("Insert stream 7: %v", err)
	}
	if len(evicted) != 1 || evicted[0].ID != 4 {
		t.Errorf("OnEvict saw %v, want the tie broken toward ID 4", evicted)
	}
}

func TestReassemblerCapAllowsExistingStreamsToComplete(t *testing.T) {
	r := NewReassembler(time.Hour)
	r.SetLimit(2)
	r.OnEvict(func(id FragID) { t.Errorf("unexpected eviction of %v", id) })

	payload := bytes.Repeat([]byte{0xab}, 1200)
	frags := fragmentsFor(t, 1, payload, 576)
	if _, _, _, err := r.Insert(frags[0].h, frags[0].p, 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	h2, p2 := firstFragment(t, 2)
	if _, _, _, err := r.Insert(h2, p2, 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// At the cap: later fragments of an open stream must flow through
	// without evicting anyone.
	for _, fr := range frags[1:] {
		_, got, done, err := r.Insert(fr.h, fr.p, time.Millisecond)
		if err != nil {
			t.Fatalf("Insert continuation: %v", err)
		}
		if done && !bytes.Equal(got, payload) {
			t.Error("reassembled payload differs at the cap")
		}
	}
	if r.Pending() != 1 {
		t.Errorf("Pending() = %d after completion, want 1", r.Pending())
	}
	if r.CapacityEvicted() != 0 {
		t.Errorf("CapacityEvicted() = %d, want 0", r.CapacityEvicted())
	}
}

func TestReassemblerTimeoutIsNotCapacityEviction(t *testing.T) {
	r := NewReassembler(time.Second)
	r.SetLimit(8)
	r.OnEvict(func(id FragID) { t.Errorf("timeout expiry fired OnEvict for %v", id) })

	h, p := firstFragment(t, 1)
	if _, _, _, err := r.Insert(h, p, 0); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// A later insert sweeps expired streams; that is timeout accounting,
	// not the capacity counter.
	h2, p2 := firstFragment(t, 2)
	if _, _, _, err := r.Insert(h2, p2, time.Minute); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if r.Pending() != 1 {
		t.Errorf("Pending() = %d after expiry, want 1", r.Pending())
	}
	if r.CapacityEvicted() != 0 {
		t.Errorf("CapacityEvicted() = %d after a timeout, want 0", r.CapacityEvicted())
	}
}
