package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IP protocol numbers used in this codebase.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 flag bits (in the Flags field, not shifted).
const (
	FlagDF = 0x2 // don't fragment
	FlagMF = 0x1 // more fragments
)

// IPv4Header is a decoded IPv4 header. Options are not supported: the
// encoder always emits a 20-byte header and the decoder skips options.
type IPv4Header struct {
	TOS        uint8
	TotalLen   uint16
	ID         uint16
	Flags      uint8  // DF / MF
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Protocol   uint8
	Checksum   uint16 // as decoded; recomputed on marshal
	Src        netip.Addr
	Dst        netip.Addr
}

// MoreFragments reports whether the MF flag is set.
func (h *IPv4Header) MoreFragments() bool { return h.Flags&FlagMF != 0 }

// DontFragment reports whether the DF flag is set.
func (h *IPv4Header) DontFragment() bool { return h.Flags&FlagDF != 0 }

// checksum16 computes the RFC 1071 internet checksum of b.
func checksum16(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// MarshalIPv4 serializes header+payload into a full IPv4 packet,
// computing TotalLen and the header checksum. Src and Dst must be valid
// IPv4 addresses.
func MarshalIPv4(h *IPv4Header, payload []byte) ([]byte, error) {
	if !h.Src.Is4() || !h.Dst.Is4() {
		return nil, fmt.Errorf("ipv4: non-IPv4 address (src=%v dst=%v)", h.Src, h.Dst)
	}
	totalLen := IPv4HeaderLen + len(payload)
	if totalLen > 0xffff {
		return nil, fmt.Errorf("ipv4: packet too large (%d bytes)", totalLen)
	}
	buf := make([]byte, totalLen)
	buf[0] = 4<<4 | IPv4HeaderLen/4 // version + IHL
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:4], uint16(totalLen))
	binary.BigEndian.PutUint16(buf[4:6], h.ID)
	binary.BigEndian.PutUint16(buf[6:8], uint16(h.Flags)<<13|h.FragOffset&0x1fff)
	buf[8] = h.TTL
	buf[9] = h.Protocol
	src, dst := h.Src.As4(), h.Dst.As4()
	copy(buf[12:16], src[:])
	copy(buf[16:20], dst[:])
	binary.BigEndian.PutUint16(buf[10:12], checksum16(buf[:IPv4HeaderLen]))
	copy(buf[IPv4HeaderLen:], payload)
	return buf, nil
}

// UnmarshalIPv4 decodes an IPv4 packet, validating the version, lengths,
// and header checksum. The returned payload aliases buf and has length
// TotalLen − header length (trailing padding, if any, is dropped).
func UnmarshalIPv4(buf []byte) (IPv4Header, []byte, error) {
	if len(buf) < IPv4HeaderLen {
		return IPv4Header{}, nil, fmt.Errorf("ipv4 header: %w (%d bytes)", ErrTruncated, len(buf))
	}
	if v := buf[0] >> 4; v != 4 {
		return IPv4Header{}, nil, fmt.Errorf("ipv4: bad version %d", v)
	}
	ihl := int(buf[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(buf) < ihl {
		return IPv4Header{}, nil, fmt.Errorf("ipv4: bad IHL %d for %d-byte buffer", ihl, len(buf))
	}
	if checksum16(buf[:ihl]) != 0 {
		return IPv4Header{}, nil, fmt.Errorf("ipv4: bad header checksum")
	}
	var h IPv4Header
	h.TOS = buf[1]
	h.TotalLen = binary.BigEndian.Uint16(buf[2:4])
	h.ID = binary.BigEndian.Uint16(buf[4:6])
	ff := binary.BigEndian.Uint16(buf[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOffset = ff & 0x1fff
	h.TTL = buf[8]
	h.Protocol = buf[9]
	h.Checksum = binary.BigEndian.Uint16(buf[10:12])
	h.Src = netip.AddrFrom4([4]byte(buf[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(buf[16:20]))
	if int(h.TotalLen) < ihl || int(h.TotalLen) > len(buf) {
		return IPv4Header{}, nil, fmt.Errorf("ipv4: total length %d outside buffer of %d bytes", h.TotalLen, len(buf))
	}
	return h, buf[ihl:h.TotalLen], nil
}

// FragmentIPv4 splits payload into IPv4 packets that fit within mtu bytes
// each (including the 20-byte header). Fragment payload sizes are rounded
// down to multiples of 8 as the fragment-offset field requires. If the
// whole packet fits, a single unfragmented packet is returned. The header's
// Flags and FragOffset fields are overwritten per fragment.
func FragmentIPv4(h *IPv4Header, payload []byte, mtu int) ([][]byte, error) {
	if mtu < IPv4HeaderLen+8 {
		return nil, fmt.Errorf("ipv4: mtu %d too small to fragment", mtu)
	}
	if IPv4HeaderLen+len(payload) <= mtu {
		hh := *h
		hh.Flags &^= FlagMF
		hh.FragOffset = 0
		pkt, err := MarshalIPv4(&hh, payload)
		if err != nil {
			return nil, err
		}
		return [][]byte{pkt}, nil
	}
	if h.DontFragment() {
		return nil, fmt.Errorf("ipv4: packet of %d bytes exceeds mtu %d with DF set", IPv4HeaderLen+len(payload), mtu)
	}
	chunk := (mtu - IPv4HeaderLen) &^ 7
	var pkts [][]byte
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		last := end >= len(payload)
		if last {
			end = len(payload)
		}
		hh := *h
		hh.FragOffset = uint16(off / 8)
		if last {
			hh.Flags &^= FlagMF
		} else {
			hh.Flags |= FlagMF
		}
		pkt, err := MarshalIPv4(&hh, payload[off:end])
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, pkt)
	}
	return pkts, nil
}
