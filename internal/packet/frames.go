package packet

import (
	"fmt"
	"net/netip"
)

// DefaultMTU is the Ethernet payload MTU used by the simulated network.
const DefaultMTU = 1500

// UDPFrameSpec describes one UDP datagram to be wrapped in IPv4 and
// Ethernet framing.
type UDPFrameSpec struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     netip.Addr
	SrcPort, DstPort uint16
	IPID             uint16
	TTL              uint8 // 0 means 64
	Payload          []byte
}

// BuildUDPFrames encodes payload as UDP/IPv4/Ethernet, fragmenting at the
// IP layer when the datagram exceeds mtu (0 means DefaultMTU). It returns
// one serialized Ethernet frame per IP packet.
func BuildUDPFrames(spec UDPFrameSpec, mtu int) ([][]byte, error) {
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	ttl := spec.TTL
	if ttl == 0 {
		ttl = 64
	}
	dgram, err := MarshalUDP(spec.SrcIP, spec.DstIP, spec.SrcPort, spec.DstPort, spec.Payload)
	if err != nil {
		return nil, fmt.Errorf("build udp frames: %w", err)
	}
	iph := IPv4Header{
		ID:       spec.IPID,
		TTL:      ttl,
		Protocol: ProtoUDP,
		Src:      spec.SrcIP,
		Dst:      spec.DstIP,
	}
	pkts, err := FragmentIPv4(&iph, dgram, mtu)
	if err != nil {
		return nil, fmt.Errorf("build udp frames: %w", err)
	}
	frames := make([][]byte, 0, len(pkts))
	for _, p := range pkts {
		frames = append(frames, MarshalEthernet(&EthernetFrame{
			Dst:     spec.DstMAC,
			Src:     spec.SrcMAC,
			Type:    EtherTypeIPv4,
			Payload: p,
		}))
	}
	return frames, nil
}
