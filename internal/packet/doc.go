// Package packet implements the wire formats SCIDIVE's Distiller decodes:
// Ethernet II framing, IPv4 (including fragmentation and reassembly), and
// UDP. The encoders produce byte-exact headers with valid checksums; the
// decoders validate structure and, where applicable, checksums.
//
// Decoding is zero-copy: returned payload slices alias the input buffer.
// Callers that retain payloads beyond the lifetime of the input (for
// example, to store them in a Trail) must copy them.
package packet
