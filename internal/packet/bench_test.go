package packet

import "testing"

func BenchmarkBuildUDPFrames(b *testing.B) {
	spec := UDPFrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: testSrcIP, DstIP: testDstIP,
		SrcPort: 5060, DstPort: 5060,
		Payload: make([]byte, 500),
	}
	b.SetBytes(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.IPID = uint16(i)
		if _, err := BuildUDPFrames(spec, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeStack(b *testing.B) {
	spec := UDPFrameSpec{
		SrcMAC: MAC{2, 0, 0, 0, 0, 1}, DstMAC: MAC{2, 0, 0, 0, 0, 2},
		SrcIP: testSrcIP, DstIP: testDstIP,
		SrcPort: 40000, DstPort: 40000,
		IPID: 1, Payload: make([]byte, 172),
	}
	frames, err := BuildUDPFrames(spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	frame := frames[0]
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef, err := UnmarshalEthernet(frame)
		if err != nil {
			b.Fatal(err)
		}
		iph, ipp, err := UnmarshalIPv4(ef.Payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := UnmarshalUDP(iph.Src, iph.Dst, ipp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReassembleFourFragments(b *testing.B) {
	h := IPv4Header{ID: 1, TTL: 64, Protocol: ProtoUDP, Src: testSrcIP, Dst: testDstIP}
	payload := make([]byte, 2000)
	pkts, err := FragmentIPv4(&h, payload, 576)
	if err != nil {
		b.Fatal(err)
	}
	type frag struct {
		h IPv4Header
		p []byte
	}
	frags := make([]frag, len(pkts))
	for i, pkt := range pkts {
		gh, gp, err := UnmarshalIPv4(pkt)
		if err != nil {
			b.Fatal(err)
		}
		frags[i] = frag{gh, gp}
	}
	r := NewReassembler(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var done bool
		for _, f := range frags {
			fh := f.h
			fh.ID = uint16(i) // fresh stream per iteration
			_, _, d, err := r.Insert(fh, f.p, 0)
			if err != nil {
				b.Fatal(err)
			}
			done = done || d
		}
		if !done {
			b.Fatal("reassembly incomplete")
		}
	}
}
