package attack

import (
	"fmt"
	"net/netip"

	"scidive/internal/packet"
)

// SendSpoofedTCP injects a TCP segment that continues someone else's
// stream: the source IP and port are the victim's, and seq places the
// payload exactly where the victim's next bytes would go, so a stream
// reassembler (the IDS's, or a real peer's) accepts it as in-order data.
// This is the stream-transport sibling of SendSpoofed — the TCP variant
// of the paper's forged-message attacks, launched by an on-path attacker
// who read the sequence numbers off the wire. The Ethernet source remains
// the attacker's NIC, as on a real LAN without MAC spoofing.
func (a *Attacker) SendSpoofedTCP(spoofSrc, dst netip.AddrPort, seq uint32, payload []byte) error {
	dstMAC, ok := a.net.MACOf(dst.Addr())
	if !ok {
		return fmt.Errorf("attack: no route to %v", dst.Addr())
	}
	frames, err := packet.BuildTCPFrames(packet.TCPFrameSpec{
		SrcMAC: a.host.MAC(), DstMAC: dstMAC,
		SrcIP: spoofSrc.Addr(), DstIP: dst.Addr(),
		SrcPort: spoofSrc.Port(), DstPort: dst.Port(),
		Seq:     seq,
		Flags:   packet.TCPFlagACK | packet.TCPFlagPSH,
		IPID:    a.host.NextIPID(),
		Payload: payload,
	}, a.net.MTU())
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	a.host.SendRawFrames(frames...)
	return nil
}
