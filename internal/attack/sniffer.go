// Package attack implements the attack tooling used in the SCIDIVE
// paper's evaluation: the four demonstrated attacks (BYE, fake instant
// messaging, call hijacking via forged REINVITE, and garbage-RTP
// injection) and the synthetic motivating scenarios of Sections 3.2 and
// 3.3 (billing fraud, REGISTER-flood DoS, and password guessing).
//
// Attackers operate exactly as they could on the paper's hub topology:
// a Sniffer learns live dialog state (Call-IDs, tags, contacts, media
// addresses) from frames crossing the hub, and the injectors forge
// packets — including spoofed source IP addresses — from that state.
package attack

import (
	"net/netip"
	"time"

	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// ObservedDialog is the attacker's view of one SIP call learned from the
// wire.
type ObservedDialog struct {
	CallID      string
	CallerURI   sip.URI
	CalleeURI   sip.URI
	CallerTag   string
	CalleeTag   string
	CallerSIP   netip.AddrPort // caller's signaling address (from INVITE source/contact)
	CalleeSIP   netip.AddrPort // callee's signaling address (from 200 contact)
	CallerMedia netip.AddrPort // from the INVITE's SDP
	CalleeMedia netip.AddrPort // from the 200's SDP
	CallerSSRC  uint32         // learned from the caller's RTP stream
	CalleeSSRC  uint32         // learned from the callee's RTP stream
	LastCSeq    uint32
	Confirmed   bool // 200 OK seen
	TornDown    bool // BYE seen
}

// Sniffer passively decodes hub traffic and tracks dialogs, emulating an
// attacker's tcpdump on the shared segment. Fragmented IP packets are
// reassembled so small-MTU networks hide nothing.
type Sniffer struct {
	dialogs map[string]*ObservedDialog
	reasm   *packet.Reassembler
	now     time.Duration
}

// NewSniffer attaches a sniffer to every frame crossing the network hub.
func NewSniffer(n *netsim.Network) *Sniffer {
	s := &Sniffer{
		dialogs: make(map[string]*ObservedDialog),
		reasm:   packet.NewReassembler(0),
	}
	n.AddTap(func(at time.Duration, frame []byte) {
		s.now = at
		s.observeFrame(frame)
	})
	return s
}

// Dialogs returns all observed dialogs keyed by Call-ID.
func (s *Sniffer) Dialogs() map[string]*ObservedDialog { return s.dialogs }

// DialogFor returns the observed dialog for a Call-ID, or nil.
func (s *Sniffer) DialogFor(callID string) *ObservedDialog { return s.dialogs[callID] }

// ConfirmedDialog returns any currently confirmed, not-torn-down dialog.
func (s *Sniffer) ConfirmedDialog() *ObservedDialog {
	for _, d := range s.dialogs {
		if d.Confirmed && !d.TornDown {
			return d
		}
	}
	return nil
}

// observeFrame decodes one hub frame into the dialog table.
func (s *Sniffer) observeFrame(frame []byte) {
	ef, err := packet.UnmarshalEthernet(frame)
	if err != nil || ef.Type != packet.EtherTypeIPv4 {
		return
	}
	iph, ipPayload, err := packet.UnmarshalIPv4(ef.Payload)
	if err != nil {
		return
	}
	full, payload, done, err := s.reasm.Insert(iph, ipPayload, s.now)
	if err != nil || !done || full.Protocol != packet.ProtoUDP {
		return
	}
	uh, udpPayload, err := packet.UnmarshalUDP(full.Src, full.Dst, payload)
	if err != nil {
		return
	}
	iph = full
	src := netip.AddrPortFrom(iph.Src, uh.SrcPort)
	if uh.SrcPort == sip.DefaultPort || uh.DstPort == sip.DefaultPort {
		m, err := sip.ParseMessage(udpPayload)
		if err != nil {
			return
		}
		s.observeSIP(m, src)
		return
	}
	if uh.DstPort >= 10000 && uh.DstPort%2 == 0 {
		s.observeRTP(src, udpPayload)
	}
}

// observeRTP learns stream SSRCs from media packets, matching them to
// dialogs by their negotiated media endpoints.
func (s *Sniffer) observeRTP(src netip.AddrPort, payload []byte) {
	pkt, err := rtp.Unmarshal(payload)
	if err != nil {
		return
	}
	for _, d := range s.dialogs {
		switch src {
		case d.CallerMedia:
			d.CallerSSRC = pkt.Header.SSRC
		case d.CalleeMedia:
			d.CalleeSSRC = pkt.Header.SSRC
		}
	}
}

// observeSIP folds a SIP message into the dialog table.
func (s *Sniffer) observeSIP(m *sip.Message, src netip.AddrPort) {
	callID := m.CallID()
	switch {
	case m.IsRequest() && m.Method == sip.MethodInvite:
		from, err1 := m.From()
		to, err2 := m.To()
		if err1 != nil || err2 != nil {
			return
		}
		d, ok := s.dialogs[callID]
		if !ok {
			d = &ObservedDialog{CallID: callID}
			s.dialogs[callID] = d
		}
		if to.Tag() != "" {
			return // re-INVITE: dialog already known
		}
		if d.CallerSIP.IsValid() {
			return // already learned; ignore the proxy-relayed copy
		}
		d.CallerURI, d.CalleeURI = from.URI, to.URI
		d.CallerTag = from.Tag()
		// The Contact header names the caller's real signaling address;
		// the network source works as a fallback.
		d.CallerSIP = src
		if contact, err := m.Contact(); err == nil {
			if ip, err2 := netip.ParseAddr(contact.URI.Host); err2 == nil {
				d.CallerSIP = netip.AddrPortFrom(ip, contact.URI.EffectivePort())
			}
		}
		if cseq, err := m.CSeq(); err == nil {
			d.LastCSeq = cseq.Seq
		}
		if sess, err := sdp.Parse(m.Body); err == nil {
			if media, ok := sess.MediaEndpoint("audio"); ok {
				d.CallerMedia = media
			}
		}
	case m.IsResponse() && m.StatusCode == sip.StatusOK:
		cseq, err := m.CSeq()
		if err != nil || cseq.Method != sip.MethodInvite {
			return
		}
		d, ok := s.dialogs[callID]
		if !ok {
			return
		}
		to, err := m.To()
		if err != nil {
			return
		}
		d.CalleeTag = to.Tag()
		if contact, err := m.Contact(); err == nil {
			if ip, err2 := netip.ParseAddr(contact.URI.Host); err2 == nil {
				d.CalleeSIP = netip.AddrPortFrom(ip, contact.URI.EffectivePort())
			}
		}
		if sess, err := sdp.Parse(m.Body); err == nil {
			if media, ok := sess.MediaEndpoint("audio"); ok {
				d.CalleeMedia = media
			}
		}
		d.Confirmed = true
	case m.IsRequest() && m.Method == sip.MethodBye:
		if d, ok := s.dialogs[callID]; ok {
			d.TornDown = true
		}
	}
}
