package attack

import (
	"fmt"
	"net/netip"

	"scidive/internal/netsim"
	"scidive/internal/packet"
	"scidive/internal/sip"
)

// Attacker is a malicious host on the LAN with packet-forging ability.
type Attacker struct {
	host  *netsim.Host
	net   *netsim.Network
	idgen *sip.IDGen

	sipPort    uint16
	onResponse func(src netip.AddrPort, m *sip.Message)
}

// NewAttacker creates an attacker on host. The attacker binds a SIP port
// so active attacks (billing fraud) can complete handshakes.
func NewAttacker(host *netsim.Host, n *netsim.Network) (*Attacker, error) {
	a := &Attacker{
		host:    host,
		net:     n,
		idgen:   sip.NewIDGen(host.Sim().Rand()),
		sipPort: sip.DefaultPort,
	}
	if err := host.BindUDP(a.sipPort, a.handleSIP); err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	return a, nil
}

// Host returns the attacker's host.
func (a *Attacker) Host() *netsim.Host { return a.host }

// IDGen exposes the attacker's identifier generator for crafting messages.
func (a *Attacker) IDGen() *sip.IDGen { return a.idgen }

func (a *Attacker) handleSIP(src netip.AddrPort, payload []byte) {
	if a.onResponse == nil {
		return
	}
	m, err := sip.ParseMessage(payload)
	if err != nil {
		return
	}
	a.onResponse(src, m)
}

// SendSpoofed emits a UDP datagram with a forged source address. The
// Ethernet source remains the attacker's NIC (as it would on a real LAN
// without MAC spoofing), but IP and port are the victim's.
func (a *Attacker) SendSpoofed(spoofSrc netip.AddrPort, dst netip.AddrPort, payload []byte) error {
	dstMAC, ok := a.net.MACOf(dst.Addr())
	if !ok {
		return fmt.Errorf("attack: no route to %v", dst.Addr())
	}
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: a.host.MAC(), DstMAC: dstMAC,
		SrcIP: spoofSrc.Addr(), DstIP: dst.Addr(),
		SrcPort: spoofSrc.Port(), DstPort: dst.Port(),
		IPID:    a.host.NextIPID(),
		Payload: payload,
	}, a.net.MTU())
	if err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	a.host.SendRawFrames(frames...)
	return nil
}

// Send emits a UDP datagram with the attacker's own source address.
func (a *Attacker) Send(srcPort uint16, dst netip.AddrPort, payload []byte) error {
	return a.host.SendUDP(srcPort, dst, payload)
}
