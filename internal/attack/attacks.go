package attack

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/rtp"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// IntervalFunc maps an attempt index to its send offset from now.
type IntervalFunc func(i int) time.Duration

// FixedInterval spaces attempts evenly.
func FixedInterval(d time.Duration) IntervalFunc {
	return func(i int) time.Duration { return time.Duration(i) * d }
}

// ForgedBye builds and sends the paper's Figure 5 BYE attack: a BYE to
// victim (the dialog's caller or callee, chosen by towardCaller) that
// appears to come from the other party. The victim tears the call down;
// the other party keeps sending RTP, producing the orphan flow SCIDIVE's
// cross-protocol rule detects.
func (a *Attacker) ForgedBye(d *ObservedDialog, towardCaller bool) error {
	if !d.Confirmed {
		return fmt.Errorf("attack: dialog %s not confirmed", d.CallID)
	}
	var from, to sip.Address
	var spoof, dst netip.AddrPort
	if towardCaller {
		from = sip.Address{URI: d.CalleeURI}.WithTag(d.CalleeTag)
		to = sip.Address{URI: d.CallerURI}.WithTag(d.CallerTag)
		spoof, dst = d.CalleeSIP, d.CallerSIP
	} else {
		from = sip.Address{URI: d.CallerURI}.WithTag(d.CallerTag)
		to = sip.Address{URI: d.CalleeURI}.WithTag(d.CalleeTag)
		spoof, dst = d.CallerSIP, d.CalleeSIP
	}
	bye := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodBye,
		RequestURI: to.URI.String(),
		From:       from,
		To:         to,
		CallID:     d.CallID,
		CSeq:       sip.CSeq{Seq: d.LastCSeq + 10, Method: sip.MethodBye},
		Via: sip.Via{Transport: "UDP", SentBy: spoof.String(),
			Params: map[string]string{"branch": a.idgen.Branch()}},
	})
	return a.SendSpoofed(spoof, dst, bye.Marshal())
}

// ForgedByeToProxy sends a BYE carrying a live dialog's identifiers to
// the proxy with an unroutable Request-URI. The proxy rejects it with 404
// and never forwards it, so the endpoints keep streaming — only a
// signaling tap at the proxy edge witnesses a teardown for the call,
// while a media tap keeps seeing the session's RTP. Neither vantage alone
// holds both halves of the contradiction (the cross-point
// bye-teardown-split rule does). The datagram leaves from the attacker's
// own address: the proxy answers requests regardless of source, and a
// third-party source keeps the frame off any tap filtered to the call's
// endpoints.
func (a *Attacker) ForgedByeToProxy(d *ObservedDialog, proxyAddr netip.AddrPort) error {
	if !d.Confirmed {
		return fmt.Errorf("attack: dialog %s not confirmed", d.CallID)
	}
	from := sip.Address{URI: d.CallerURI}.WithTag(d.CallerTag)
	to := sip.Address{URI: d.CalleeURI}.WithTag(d.CalleeTag)
	bye := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodBye,
		RequestURI: sip.URI{User: "ghost", Host: proxyAddr.Addr().String(), Port: proxyAddr.Port()}.String(),
		From:       from,
		To:         to,
		CallID:     d.CallID,
		CSeq:       sip.CSeq{Seq: d.LastCSeq + 10, Method: sip.MethodBye},
		Via: sip.Via{Transport: "UDP",
			SentBy: netip.AddrPortFrom(a.host.IP(), a.sipPort).String(),
			Params: map[string]string{"branch": a.idgen.Branch()}},
	})
	return a.Send(a.sipPort, proxyAddr, bye.Marshal())
}

// HijackRegister mounts a registration hijack with stolen credentials:
// the attacker answers the registrar's challenge with the victim's real
// password, rebinding the victim's AOR to the attacker's own contact.
// From the registrar's side this is a perfectly valid re-registration —
// only correlating WHERE the two successful registrations came from
// exposes the race.
func (a *Attacker) HijackRegister(proxyAddr netip.AddrPort, aor sip.URI, password string) {
	callID := a.idgen.CallID(a.host.IP().String())
	me := sip.Address{URI: aor}
	contact := sip.Address{URI: sip.URI{User: aor.User, Host: a.host.IP().String(), Port: a.sipPort}}
	uri := sip.URI{Host: proxyAddr.Addr().String(), Port: proxyAddr.Port()}.String()
	send := func(cseq uint32, authz string) {
		req := sip.NewRequest(sip.RequestSpec{
			Method:     sip.MethodRegister,
			RequestURI: uri,
			From:       me.WithTag(a.idgen.Tag()),
			To:         me,
			CallID:     callID,
			CSeq:       sip.CSeq{Seq: cseq, Method: sip.MethodRegister},
			Via: sip.Via{Transport: "UDP", SentBy: fmt.Sprintf("%s:%d", a.host.IP(), a.sipPort),
				Params: map[string]string{"branch": a.idgen.Branch()}},
			Contact: &contact,
		})
		if authz != "" {
			req.Headers.Add(sip.HdrAuthorization, authz)
		}
		_ = a.Send(a.sipPort, proxyAddr, req.Marshal())
	}
	answered := false
	a.onResponse = func(_ netip.AddrPort, m *sip.Message) {
		if m.StatusCode != sip.StatusUnauthorized || answered {
			return
		}
		chal, err := sip.ParseChallenge(m.Headers.Get(sip.HdrWWWAuth))
		if err != nil {
			return
		}
		answered = true
		creds := sip.Credentials{
			Username: aor.User, Realm: chal.Realm, Nonce: chal.Nonce, URI: uri,
			Response: sip.DigestResponse(aor.User, chal.Realm, password, chal.Nonce, sip.MethodRegister, uri),
		}
		send(2, creds.String())
	}
	send(1, "")
}

// FakeIM sends the Figure 6 attack: an instant message delivered straight
// to the victim with a forged From header impersonating fromURI. Unlike
// legitimate IMs, which arrive relayed by the proxy, this one carries the
// attacker's own source IP — the discrepancy SCIDIVE's rule checks.
func (a *Attacker) FakeIM(victim netip.AddrPort, fromURI sip.URI, text string) error {
	msg := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodMessage,
		RequestURI: sip.URI{Host: victim.Addr().String(), Port: victim.Port()}.String(),
		From:       sip.Address{URI: fromURI}.WithTag(a.idgen.Tag()),
		To:         sip.Address{URI: sip.URI{Host: victim.Addr().String()}},
		CallID:     a.idgen.CallID(a.host.IP().String()),
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodMessage},
		Via: sip.Via{Transport: "UDP", SentBy: fmt.Sprintf("%s:%d", a.host.IP(), a.sipPort),
			Params: map[string]string{"branch": a.idgen.Branch()}},
		Body:     []byte(text),
		BodyType: "text/plain",
	})
	return a.Send(a.sipPort, victim, msg.Marshal())
}

// FakeIMSpoofed is the stronger variant of the Figure 6 attack the paper
// concedes defeats the endpoint rule: the instant message's source IP is
// spoofed to the impersonated sender's own address, so the victim-local
// source-stability check passes. Only cooperative detection (the
// impersonated endpoint's detector never saw a matching send) catches it.
func (a *Attacker) FakeIMSpoofed(victim netip.AddrPort, fromURI sip.URI, spoofSrc netip.AddrPort, text string) error {
	msg := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodMessage,
		RequestURI: sip.URI{Host: victim.Addr().String(), Port: victim.Port()}.String(),
		From:       sip.Address{URI: fromURI}.WithTag(a.idgen.Tag()),
		To:         sip.Address{URI: sip.URI{Host: victim.Addr().String()}},
		CallID:     a.idgen.CallID(spoofSrc.Addr().String()),
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodMessage},
		Via: sip.Via{Transport: "UDP", SentBy: spoofSrc.String(),
			Params: map[string]string{"branch": a.idgen.Branch()}},
		Body:     []byte(text),
		BodyType: "text/plain",
	})
	return a.SendSpoofed(spoofSrc, victim, msg.Marshal())
}

// Hijack sends the Figure 7 call-hijacking attack: a forged in-dialog
// REINVITE to the victim that appears to come from the remote party and
// redirects the victim's outgoing media to mediaSink (typically the
// attacker's own address). The remote party keeps transmitting to the
// victim — the orphan flow the detection rule watches for.
func (a *Attacker) Hijack(d *ObservedDialog, towardCaller bool, mediaSink netip.AddrPort) error {
	if !d.Confirmed {
		return fmt.Errorf("attack: dialog %s not confirmed", d.CallID)
	}
	var from, to sip.Address
	var spoof, dst netip.AddrPort
	var impersonated sip.URI
	if towardCaller {
		impersonated = d.CalleeURI
		from = sip.Address{URI: d.CalleeURI}.WithTag(d.CalleeTag)
		to = sip.Address{URI: d.CallerURI}.WithTag(d.CallerTag)
		spoof, dst = d.CalleeSIP, d.CallerSIP
	} else {
		impersonated = d.CallerURI
		from = sip.Address{URI: d.CallerURI}.WithTag(d.CallerTag)
		to = sip.Address{URI: d.CalleeURI}.WithTag(d.CalleeTag)
		spoof, dst = d.CallerSIP, d.CalleeSIP
	}
	contact := sip.Address{URI: sip.URI{User: impersonated.User, Host: spoof.Addr().String(), Port: spoof.Port()}}
	sess := sdp.NewAudioSession(impersonated.User, mediaSink.Addr(), mediaSink.Port())
	reinvite := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: to.URI.String(),
		From:       from,
		To:         to,
		CallID:     d.CallID,
		CSeq:       sip.CSeq{Seq: d.LastCSeq + 20, Method: sip.MethodInvite},
		Via: sip.Via{Transport: "UDP", SentBy: spoof.String(),
			Params: map[string]string{"branch": a.idgen.Branch()}},
		Contact:  &contact,
		Body:     sess.Marshal(),
		BodyType: "application/sdp",
	})
	return a.SendSpoofed(spoof, dst, reinvite.Marshal())
}

// InjectGarbageRTP sends the Figure 8 RTP attack: count packets of random
// bytes (header and payload alike) to the victim's media port. Depending
// on the client these corrupt the jitter buffer, garble audio, or crash
// the phone.
func (a *Attacker) InjectGarbageRTP(victimMedia netip.AddrPort, count, size int) error {
	if size <= 0 {
		size = 172 // typical G.711 packet size
	}
	rng := a.host.Sim().Rand()
	for i := 0; i < count; i++ {
		garbage := make([]byte, size)
		rng.Read(garbage)
		if err := a.Send(40666, victimMedia, garbage); err != nil {
			return err
		}
	}
	return nil
}

// RegisterFlood mounts the Section 3.3 DoS: count unauthenticated
// REGISTERs for aor fired at the proxy at the given interval, ignoring
// every 401. The requests share a Call-ID with increasing CSeq, as a
// naive flooding tool would send them.
func (a *Attacker) RegisterFlood(proxyAddr netip.AddrPort, aor sip.URI, count int, interval IntervalFunc) {
	callID := a.idgen.CallID(a.host.IP().String())
	me := sip.Address{URI: aor}
	contact := sip.Address{URI: sip.URI{User: aor.User, Host: a.host.IP().String(), Port: a.sipPort}}
	for i := 0; i < count; i++ {
		i := i
		a.host.Sim().Schedule(interval(i), func() {
			req := sip.NewRequest(sip.RequestSpec{
				Method:     sip.MethodRegister,
				RequestURI: sip.URI{Host: proxyAddr.Addr().String(), Port: proxyAddr.Port()}.String(),
				From:       me.WithTag(a.idgen.Tag()),
				To:         me,
				CallID:     callID,
				CSeq:       sip.CSeq{Seq: uint32(i + 1), Method: sip.MethodRegister},
				Via: sip.Via{Transport: "UDP", SentBy: fmt.Sprintf("%s:%d", a.host.IP(), a.sipPort),
					Params: map[string]string{"branch": a.idgen.Branch()}},
				Contact: &contact,
			})
			_ = a.Send(a.sipPort, proxyAddr, req.Marshal())
		})
	}
}

// PasswordGuess mounts the Section 3.3 brute-force attack: count REGISTER
// attempts, each answering the server's challenge with a different
// guessed password. Every attempt draws a fresh 401.
func (a *Attacker) PasswordGuess(proxyAddr netip.AddrPort, aor sip.URI, realm string, guesses []string, interval IntervalFunc) {
	callID := a.idgen.CallID(a.host.IP().String())
	me := sip.Address{URI: aor}
	contact := sip.Address{URI: sip.URI{User: aor.User, Host: a.host.IP().String(), Port: a.sipPort}}
	uri := sip.URI{Host: proxyAddr.Addr().String(), Port: proxyAddr.Port()}.String()
	nonces := make(chan string, 1)
	a.onResponse = func(_ netip.AddrPort, m *sip.Message) {
		if m.StatusCode != sip.StatusUnauthorized {
			return
		}
		if chal, err := sip.ParseChallenge(m.Headers.Get(sip.HdrWWWAuth)); err == nil {
			select {
			case <-nonces:
			default:
			}
			nonces <- chal.Nonce
		}
	}
	send := func(i int, authz string) {
		req := sip.NewRequest(sip.RequestSpec{
			Method:     sip.MethodRegister,
			RequestURI: uri,
			From:       me.WithTag(a.idgen.Tag()),
			To:         me,
			CallID:     callID,
			CSeq:       sip.CSeq{Seq: uint32(i + 1), Method: sip.MethodRegister},
			Via: sip.Via{Transport: "UDP", SentBy: fmt.Sprintf("%s:%d", a.host.IP(), a.sipPort),
				Params: map[string]string{"branch": a.idgen.Branch()}},
			Contact: &contact,
		})
		if authz != "" {
			req.Headers.Add(sip.HdrAuthorization, authz)
		}
		_ = a.Send(a.sipPort, proxyAddr, req.Marshal())
	}
	// First request elicits a challenge; each subsequent attempt uses the
	// latest nonce with the next guessed password. Guesses are offset by a
	// grace period so the first challenge has time to arrive.
	const challengeGrace = 50 * time.Millisecond
	send(0, "")
	for i, guess := range guesses {
		i, guess := i, guess
		a.host.Sim().Schedule(challengeGrace+interval(i), func() {
			var nonce string
			select {
			case nonce = <-nonces:
			default:
				return // no challenge yet; skip this guess
			}
			creds := sip.Credentials{
				Username: aor.User, Realm: realm, Nonce: nonce, URI: uri,
				Response: sip.DigestResponse(aor.User, realm, guess, nonce, sip.MethodRegister, uri),
			}
			send(i+1, creds.String())
		})
	}
}

// SpoofedRTCPBye sends a forged RTCP BYE to the victim's RTCP port,
// spoofing the remote party's media source. Clients that honour RTCP BYE
// stop transmitting — the call goes silent while the SIP dialog stays up,
// a media-plane DoS spanning three protocols (SIP state, RTP media, RTCP
// control). SCIDIVE's rtcp-bye-spoof rule catches the RTCP BYE that has
// no corresponding SIP BYE.
func (a *Attacker) SpoofedRTCPBye(d *ObservedDialog, towardCaller bool) error {
	if !d.Confirmed {
		return fmt.Errorf("attack: dialog %s not confirmed", d.CallID)
	}
	var victimMedia, spoofMedia netip.AddrPort
	var ssrc uint32
	if towardCaller {
		victimMedia, spoofMedia, ssrc = d.CallerMedia, d.CalleeMedia, d.CalleeSSRC
	} else {
		victimMedia, spoofMedia, ssrc = d.CalleeMedia, d.CallerMedia, d.CallerSSRC
	}
	if !victimMedia.IsValid() || !spoofMedia.IsValid() {
		return fmt.Errorf("attack: dialog %s media endpoints unknown", d.CallID)
	}
	bye := &rtp.Bye{SSRCs: []uint32{ssrc}, Reason: "teardown"}
	buf, err := rtp.MarshalCompound([]rtp.RTCPPacket{bye})
	if err != nil {
		return err
	}
	dst := netip.AddrPortFrom(victimMedia.Addr(), victimMedia.Port()+1)
	spoof := netip.AddrPortFrom(spoofMedia.Addr(), spoofMedia.Port()+1)
	return a.SendSpoofed(spoof, dst, buf)
}
