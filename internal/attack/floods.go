package attack

import (
	"fmt"
	"net/netip"

	"scidive/internal/packet"
	"scidive/internal/rtp"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// InviteFlood mounts a call-setup flood: count INVITEs fired at the proxy,
// each with a fresh Call-ID and From tag, none ever completed. Every
// INVITE forces the IDS to allocate dialog state, so an unbounded tracker
// is itself the attack surface — state exhaustion rather than bandwidth.
// With core.Limits.MaxSessions set the engine sheds the oldest dialogs
// and keeps detecting on live ones.
func (a *Attacker) InviteFlood(proxyAddr netip.AddrPort, target sip.URI, count int, interval IntervalFunc) {
	me := sip.URI{User: "flood", Host: a.host.IP().String(), Port: a.sipPort}
	contact := sip.Address{URI: me}
	for i := 0; i < count; i++ {
		i := i
		a.host.Sim().Schedule(interval(i), func() {
			sess := sdp.NewAudioSession("flood", a.host.IP(), 40700)
			req := sip.NewRequest(sip.RequestSpec{
				Method:     sip.MethodInvite,
				RequestURI: target.String(),
				From:       sip.Address{URI: me}.WithTag(a.idgen.Tag()),
				To:         sip.Address{URI: target},
				CallID:     a.idgen.CallID(a.host.IP().String()),
				CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
				Via: sip.Via{Transport: "UDP", SentBy: fmt.Sprintf("%s:%d", a.host.IP(), a.sipPort),
					Params: map[string]string{"branch": a.idgen.Branch()}},
				Contact:  &contact,
				Body:     sess.Marshal(),
				BodyType: "application/sdp",
			})
			_ = a.Send(a.sipPort, proxyAddr, req.Marshal())
		})
	}
}

// OptionsScan mounts a capability sweep: count OPTIONS probes fired at
// the proxy, each under a fresh Call-ID, walking through invented target
// users. Individually each probe is legitimate SIP; the attack signature
// is one source opening many dialogs in a short window, which is
// cross-dialog state no per-session detector sees.
func (a *Attacker) OptionsScan(proxyAddr netip.AddrPort, domain string, count int, interval IntervalFunc) {
	me := sip.URI{User: "scanner", Host: a.host.IP().String(), Port: a.sipPort}
	for i := 0; i < count; i++ {
		i := i
		a.host.Sim().Schedule(interval(i), func() {
			target := sip.URI{User: fmt.Sprintf("probe%d", i), Host: domain}
			req := sip.NewRequest(sip.RequestSpec{
				Method:     sip.MethodOptions,
				RequestURI: target.String(),
				From:       sip.Address{URI: me}.WithTag(a.idgen.Tag()),
				To:         sip.Address{URI: target},
				CallID:     a.idgen.CallID(a.host.IP().String()),
				CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodOptions},
				Via: sip.Via{Transport: "UDP", SentBy: fmt.Sprintf("%s:%d", a.host.IP(), a.sipPort),
					Params: map[string]string{"branch": a.idgen.Branch()}},
			})
			_ = a.Send(a.sipPort, proxyAddr, req.Marshal())
		})
	}
}

// FragmentFlood mounts an IP reassembly-exhaustion attack: count
// first-fragments of datagrams whose remaining fragments never arrive,
// each under a distinct IP ID so every one opens a new reassembly buffer
// that can only die by timeout — or, with core.Limits.MaxFragGroups set,
// by capacity eviction. fragSize controls the fragment payload size
// (0 picks a small default).
func (a *Attacker) FragmentFlood(dst netip.AddrPort, count, fragSize int, interval IntervalFunc) error {
	if fragSize <= 0 {
		fragSize = 128
	}
	dstMAC, ok := a.net.MACOf(dst.Addr())
	if !ok {
		return fmt.Errorf("attack: no route to %v", dst.Addr())
	}
	// A payload larger than one fragment guarantees BuildUDPFrames emits a
	// multi-fragment train; only the first fragment is ever sent.
	payload := make([]byte, 4*fragSize)
	a.host.Sim().Rand().Read(payload)
	for i := 0; i < count; i++ {
		i := i
		a.host.Sim().Schedule(interval(i), func() {
			frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
				SrcMAC: a.host.MAC(), DstMAC: dstMAC,
				SrcIP: a.host.IP(), DstIP: dst.Addr(),
				SrcPort: 40800, DstPort: dst.Port(),
				IPID:    a.host.NextIPID(),
				Payload: payload,
			}, 14+20+8+fragSize)
			if err != nil || len(frames) < 2 {
				return
			}
			a.host.SendRawFrames(frames[0])
		})
	}
	return nil
}

// RTPBlast sprays well-formed RTP at a spread of media ports on the
// victim: perPort packets to each of ports consecutive even ports
// starting at basePort. Each previously-unseen destination port costs the
// IDS a sequence tracker and a session entry, so the blast exercises the
// MaxSeqTrackers and MaxSessions budgets while the decodable payload
// keeps the packets off the garbage-RTP fast path.
func (a *Attacker) RTPBlast(victim netip.Addr, basePort uint16, ports, perPort int, interval IntervalFunc) {
	n := 0
	for p := 0; p < ports; p++ {
		dst := netip.AddrPortFrom(victim, basePort+uint16(2*p))
		ssrc := uint32(0xB1A50000 + p)
		for j := 0; j < perPort; j++ {
			n++
			seq := uint16(j + 1)
			a.host.Sim().Schedule(interval(n), func() {
				pkt := rtp.Packet{
					Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: uint32(seq) * 160, SSRC: ssrc},
					Payload: make([]byte, 160),
				}
				buf, err := pkt.Marshal()
				if err != nil {
					return
				}
				_ = a.Send(40900, dst, buf)
			})
		}
	}
}
