package attack

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/rtp"
)

// Evasion attacks: traffic shaped so a port-only classifier files it
// under the wrong protocol decoder (or none at all), hiding the payload
// from the rules that would match it. Each helper forges the wire bytes
// of one evasion family; SCIDIVE's content-confirmed classification is
// the countermeasure (the protocol-mismatch and evasion-suspect rules).

// TunnelRTPPacket builds one well-formed RTP packet for tunneling over a
// signaling port or stream: plausible payload type, non-zero SSRC, and
// size bytes of silence payload.
func TunnelRTPPacket(seq uint16, ts time.Duration, ssrc uint32, size int) []byte {
	p := rtp.Packet{
		Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: uint32(ts / time.Millisecond), SSRC: ssrc},
		Payload: make([]byte, size),
	}
	buf, err := p.Marshal()
	if err != nil {
		panic(err) // deterministic inputs; cannot fail
	}
	return buf
}

// TunnelRTP sends count RTP packets as UDP datagrams to a SIP signaling
// port, spoofing spoofSrc. A port-only classifier hands them to the SIP
// parser, which rejects them, and the media stream flows unwatched; a
// content-confirming classifier recognizes the RTP framing and flags the
// port/content contradiction.
func (a *Attacker) TunnelRTP(spoofSrc, dst netip.AddrPort, count int, startSeq uint16, ssrc uint32) error {
	for i := 0; i < count; i++ {
		pkt := TunnelRTPPacket(startSeq+uint16(i), a.host.Sim().Now(), ssrc, 160)
		if err := a.SendSpoofed(spoofSrc, dst, pkt); err != nil {
			return fmt.Errorf("attack: tunnel rtp: %w", err)
		}
	}
	return nil
}

// SmuggleSIPInRTP wraps a SIP message inside a well-formed RTP packet
// and sends it to the victim's media port, spoofing spoofSrc. The outer
// packet decodes cleanly as RTP, so a classifier that stops at the media
// header never inspects the smuggled signaling.
func (a *Attacker) SmuggleSIPInRTP(spoofSrc, dst netip.AddrPort, seq uint16, ssrc uint32, sipMsg []byte) error {
	p := rtp.Packet{
		Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: uint32(a.host.Sim().Now() / time.Millisecond), SSRC: ssrc},
		Payload: sipMsg,
	}
	buf, err := p.Marshal()
	if err != nil {
		return fmt.Errorf("attack: smuggle sip: %w", err)
	}
	if err := a.SendSpoofed(spoofSrc, dst, buf); err != nil {
		return fmt.Errorf("attack: smuggle sip: %w", err)
	}
	return nil
}

// SmuggledSIPInRTP returns the wire bytes of one RTP-wrapped SIP message
// without sending it, for injection into a TCP stream (SendSpoofedTCP).
func SmuggledSIPInRTP(seq uint16, ts time.Duration, ssrc uint32, sipMsg []byte) ([]byte, error) {
	p := rtp.Packet{
		Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: uint32(ts / time.Millisecond), SSRC: ssrc},
		Payload: sipMsg,
	}
	buf, err := p.Marshal()
	if err != nil {
		return nil, fmt.Errorf("attack: smuggle sip: %w", err)
	}
	return buf, nil
}

// TortureReplay fires a corpus of hostile signaling messages at dst as
// UDP datagrams, spoofing spoofSrc — RFC 4475-style torture input aimed
// at whatever decoder the port selects. The IDS must classify, account,
// and survive every one of them.
func (a *Attacker) TortureReplay(spoofSrc, dst netip.AddrPort, corpus [][]byte) error {
	for _, raw := range corpus {
		if err := a.SendSpoofed(spoofSrc, dst, raw); err != nil {
			return fmt.Errorf("attack: torture replay: %w", err)
		}
	}
	return nil
}
