package attack_test

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/attack"
	"scidive/internal/endpoint"
	"scidive/internal/scenario"
	"scidive/internal/sip"
)

func newBed(t *testing.T, cfg scenario.Config) *scenario.Testbed {
	t.Helper()
	tb, err := scenario.New(cfg)
	if err != nil {
		t.Fatalf("scenario.New: %v", err)
	}
	return tb
}

func establishedBed(t *testing.T, cfg scenario.Config) (*scenario.Testbed, *endpoint.Call) {
	t.Helper()
	tb := newBed(t, cfg)
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	call, err := tb.EstablishCall()
	if err != nil {
		t.Fatal(err)
	}
	tb.Run(2 * time.Second) // let media settle
	return tb, call
}

func TestSnifferLearnsDialog(t *testing.T) {
	tb, _ := establishedBed(t, scenario.Config{Seed: 1})
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("sniffer saw no confirmed dialog")
	}
	if d.CallerURI.User != "alice" || d.CalleeURI.User != "bob" {
		t.Errorf("parties = %s -> %s", d.CallerURI, d.CalleeURI)
	}
	if d.CallerTag == "" || d.CalleeTag == "" {
		t.Error("sniffer missed dialog tags")
	}
	if d.CallerMedia != tb.Alice.RTPAddr() || d.CalleeMedia != tb.Bob.RTPAddr() {
		t.Errorf("media = %v / %v", d.CallerMedia, d.CalleeMedia)
	}
	if d.CallerSIP.Addr() != scenario.AddrClientA {
		t.Errorf("caller SIP addr = %v", d.CallerSIP)
	}
	// Callee SIP comes from the 200's Contact.
	if d.CalleeSIP.Addr() != scenario.AddrClientB {
		t.Errorf("callee SIP addr = %v", d.CalleeSIP)
	}
}

func TestForgedByeTearsDownVictimOnly(t *testing.T) {
	tb, aliceCall := establishedBed(t, scenario.Config{Seed: 2})
	bobCall := tb.Bob.ActiveCall()
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("no sniffed dialog")
	}
	// Forge "BYE from bob" to alice (Figure 5).
	tb.Sim.Schedule(0, func() {
		if err := tb.Attacker.ForgedBye(d, true); err != nil {
			t.Errorf("ForgedBye: %v", err)
		}
	})
	tb.Run(time.Second)
	if aliceCall.Established() {
		t.Error("alice's call survived the forged BYE")
	}
	if !bobCall.Established() {
		t.Error("bob's call dropped — BYE should only reach alice")
	}
	// Bob keeps transmitting: the orphan flow.
	before := tb.Alice.OrphanRTP
	sent := bobCall.RTPSent
	tb.Run(2 * time.Second)
	if bobCall.RTPSent <= sent {
		t.Error("bob stopped sending RTP")
	}
	if tb.Alice.OrphanRTP <= before {
		t.Error("alice saw no orphan RTP after teardown")
	}
}

func TestForgedByeRequiresConfirmedDialog(t *testing.T) {
	tb := newBed(t, scenario.Config{Seed: 3})
	d := &attack.ObservedDialog{CallID: "x"}
	if err := tb.Attacker.ForgedBye(d, true); err == nil {
		t.Error("ForgedBye on unconfirmed dialog: want error")
	}
	if err := tb.Attacker.Hijack(d, true, netip.AddrPortFrom(scenario.AddrAttacker, 1)); err == nil {
		t.Error("Hijack on unconfirmed dialog: want error")
	}
}

func TestFakeIMDeliveredWithAttackerSource(t *testing.T) {
	tb := newBed(t, scenario.Config{Seed: 4})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	// Legitimate IM first (arrives via proxy), then the fake (direct).
	tb.Sim.Schedule(0, func() { tb.Bob.SendIM("alice", "hi, it's really bob") })
	tb.Sim.Schedule(time.Second, func() {
		err := tb.Attacker.FakeIM(
			netip.AddrPortFrom(scenario.AddrClientA, sip.DefaultPort),
			sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
			"send the wire transfer to ...",
		)
		if err != nil {
			t.Errorf("FakeIM: %v", err)
		}
	})
	tb.Run(3 * time.Second)
	msgs := tb.Alice.Messages()
	if len(msgs) != 2 {
		t.Fatalf("alice has %d IMs, want 2", len(msgs))
	}
	if msgs[0].SourceIP != scenario.AddrProxy {
		t.Errorf("legit IM source = %v, want proxy", msgs[0].SourceIP)
	}
	if msgs[1].SourceIP != scenario.AddrAttacker {
		t.Errorf("fake IM source = %v, want attacker", msgs[1].SourceIP)
	}
	// Both claim to be from bob — that's the point of the attack.
	if msgs[0].From != msgs[1].From {
		t.Errorf("From AORs differ: %q vs %q", msgs[0].From, msgs[1].From)
	}
}

func TestHijackRedirectsVictimMedia(t *testing.T) {
	tb, aliceCall := establishedBed(t, scenario.Config{Seed: 5})
	d := tb.Sniffer.ConfirmedDialog()
	if d == nil {
		t.Fatal("no sniffed dialog")
	}
	sink := netip.AddrPortFrom(scenario.AddrAttacker, 46000)
	tb.Sim.Schedule(0, func() {
		if err := tb.Attacker.Hijack(d, true, sink); err != nil {
			t.Errorf("Hijack: %v", err)
		}
	})
	tb.Run(time.Second)
	// Alice's media now flows to the attacker.
	if aliceCall.RemoteMedia() != sink {
		t.Errorf("alice sends media to %v, want %v", aliceCall.RemoteMedia(), sink)
	}
	if len(tb.Alice.EventsOf(endpoint.EvCallRedirected)) == 0 {
		t.Error("alice did not process the forged REINVITE")
	}
	// Bob experiences silence (alice's RTP no longer arrives) but keeps
	// sending — another orphan flow.
	bobCall := tb.Bob.ActiveCall()
	recvBefore := bobCall.RTPReceived
	tb.Run(2 * time.Second)
	if bobCall.RTPReceived != recvBefore {
		t.Errorf("bob still receives media after hijack")
	}
	if !bobCall.Established() {
		t.Error("bob's dialog should remain confirmed")
	}
}

func TestGarbageRTPGlitchesMessengerLikeClient(t *testing.T) {
	tb, aliceCall := establishedBed(t, scenario.Config{Seed: 6}) // CrashOnCorrupt=false
	tb.Sim.Schedule(0, func() {
		if err := tb.Attacker.InjectGarbageRTP(tb.Alice.RTPAddr(), 10, 172); err != nil {
			t.Errorf("InjectGarbageRTP: %v", err)
		}
	})
	tb.Run(time.Second)
	if tb.Alice.Crashed() {
		t.Error("messenger-like client crashed")
	}
	if aliceCall.Glitches == 0 {
		t.Error("no glitches recorded from garbage RTP")
	}
	if len(tb.Alice.EventsOf(endpoint.EvMediaGlitch)) == 0 {
		t.Error("no media-glitch events logged")
	}
	if !aliceCall.Established() {
		t.Error("call dropped on a surviving client")
	}
}

func TestGarbageRTPCrashesXLiteLikeClient(t *testing.T) {
	tb, _ := establishedBed(t, scenario.Config{Seed: 7, CrashOnCorrupt: true})
	tb.Sim.Schedule(0, func() {
		_ = tb.Attacker.InjectGarbageRTP(tb.Alice.RTPAddr(), 10, 172)
	})
	tb.Run(time.Second)
	if !tb.Alice.Crashed() {
		t.Fatal("X-Lite-like client did not crash")
	}
	if len(tb.Alice.EventsOf(endpoint.EvCrashed)) != 1 {
		t.Error("crash not logged exactly once")
	}
	// A crashed phone stops transmitting.
	aliceCall := func() *endpoint.Call {
		for _, c := range tb.Alice.Calls() {
			return c
		}
		return nil
	}()
	sent := aliceCall.RTPSent
	tb.Run(2 * time.Second)
	if aliceCall.RTPSent != sent {
		t.Error("crashed client kept sending RTP")
	}
}

func TestRegisterFloodDrawsRepeated401s(t *testing.T) {
	tb := newBed(t, scenario.Config{Seed: 8})
	aor := sip.URI{User: "mallory", Host: scenario.AddrProxy.String()}
	tb.Attacker.RegisterFlood(tb.Proxy.Addr(), aor, 50, attack.FixedInterval(100*time.Millisecond))
	tb.Run(10 * time.Second)
	st := tb.Proxy.Stats()
	if st.Challenges < 50 {
		t.Errorf("proxy sent %d challenges, want >= 50", st.Challenges)
	}
	if st.Registers != 0 {
		t.Errorf("flood produced %d successful registrations", st.Registers)
	}
}

func TestPasswordGuessingDrawsAuthFailures(t *testing.T) {
	tb := newBed(t, scenario.Config{Seed: 9})
	aor := sip.URI{User: "alice", Host: scenario.AddrProxy.String()}
	guesses := []string{"123456", "password", "letmein", "alice", "qwerty"}
	tb.Attacker.PasswordGuess(tb.Proxy.Addr(), aor, "scidive.test", guesses, attack.FixedInterval(200*time.Millisecond))
	tb.Run(5 * time.Second)
	st := tb.Proxy.Stats()
	if st.AuthFailures < len(guesses) {
		t.Errorf("AuthFailures = %d, want >= %d", st.AuthFailures, len(guesses))
	}
	if st.Registers != 0 {
		t.Errorf("guessing succeeded %d times", st.Registers)
	}
}

func TestPasswordGuessingCorrectPasswordSucceeds(t *testing.T) {
	// Sanity check of the attack tooling: if the real password is among the
	// guesses, the registration eventually succeeds.
	tb := newBed(t, scenario.Config{Seed: 10})
	aor := sip.URI{User: "alice", Host: scenario.AddrProxy.String()}
	guesses := []string{"wrong1", "wonderland"}
	tb.Attacker.PasswordGuess(tb.Proxy.Addr(), aor, "scidive.test", guesses, attack.FixedInterval(200*time.Millisecond))
	tb.Run(5 * time.Second)
	if tb.Proxy.Stats().Registers != 1 {
		t.Errorf("Registers = %d, want 1 (correct guess)", tb.Proxy.Stats().Registers)
	}
}

func TestBillingFraudBillsVictim(t *testing.T) {
	tb := newBed(t, scenario.Config{Seed: 11})
	if err := tb.RegisterAll(); err != nil {
		t.Fatal(err)
	}
	fraud := attack.NewBillingFraud(
		tb.Attacker,
		tb.Proxy.Addr(),
		sip.URI{User: "alice", Host: scenario.AddrProxy.String()},
		sip.URI{User: "bob", Host: scenario.AddrProxy.String()},
		40600,
	)
	tb.Sim.Schedule(0, func() {
		if err := fraud.Launch(5 * time.Second); err != nil {
			t.Errorf("Launch: %v", err)
		}
	})
	tb.Run(8 * time.Second)
	if !fraud.Established {
		t.Fatal("fraudulent call did not complete")
	}
	if fraud.RTPSent == 0 {
		t.Error("attacker sent no media")
	}
	recs := tb.Acct.Records()
	if len(recs) != 1 {
		t.Fatalf("CDRs = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.From != "alice@"+scenario.AddrProxy.String() {
		t.Errorf("CDR From = %q — the victim should be billed", r.From)
	}
	// The tell-tale: the CDR's source IP is the attacker's, not alice's.
	if r.FromIP != scenario.AddrAttacker {
		t.Errorf("CDR FromIP = %v, want attacker %v", r.FromIP, scenario.AddrAttacker)
	}
}
