package attack

import (
	"fmt"
	"net/netip"
	"time"

	"scidive/internal/rtp"
	"scidive/internal/sdp"
	"scidive/internal/sip"
)

// BillingFraud mounts the Section 3.2 synthetic attack. The attacker
// sends an INVITE through the proxy whose From header impersonates the
// victim, exploiting the proxy's (period-typical) failure to verify that
// a request's From URI matches its network source. The proxy bills the
// call to the victim; the attacker completes the handshake from its own
// address and exchanges media with the callee without being charged.
//
// The crafted INVITE is deliberately, subtly malformed — it carries a
// duplicate From header, the kind of torture-message trick used against
// 2004-era proxies — which is the "incorrectly formatted SIP message"
// event of the paper's three-event detection rule.
type BillingFraud struct {
	attacker  *Attacker
	proxyAddr netip.AddrPort
	victimURI sip.URI // impersonated caller
	calleeURI sip.URI

	mediaPort uint16
	callID    string
	invite    *sip.Message

	// Established reports whether the fraudulent call completed.
	Established bool
	// RTPSent counts media packets the attacker pushed to the callee.
	RTPSent int
}

// NewBillingFraud prepares the attack. mediaPort is the attacker-local
// RTP port used for the fraudulent call's media.
func NewBillingFraud(a *Attacker, proxyAddr netip.AddrPort, victimURI, calleeURI sip.URI, mediaPort uint16) *BillingFraud {
	return &BillingFraud{
		attacker:  a,
		proxyAddr: proxyAddr,
		victimURI: victimURI,
		calleeURI: calleeURI,
		mediaPort: mediaPort,
	}
}

// Launch sends the crafted INVITE and arranges completion of the call.
// mediaFor controls how long the attacker transmits RTP once established.
func (b *BillingFraud) Launch(mediaFor time.Duration) error {
	a := b.attacker
	b.callID = a.idgen.CallID(a.host.IP().String())
	contact := sip.Address{URI: sip.URI{User: b.victimURI.User, Host: a.host.IP().String(), Port: a.sipPort}}
	sess := sdp.NewAudioSession(b.victimURI.User, a.host.IP(), b.mediaPort)
	invite := sip.NewRequest(sip.RequestSpec{
		Method:     sip.MethodInvite,
		RequestURI: b.calleeURI.String(),
		From:       sip.Address{URI: b.victimURI}.WithTag(a.idgen.Tag()),
		To:         sip.Address{URI: b.calleeURI},
		CallID:     b.callID,
		CSeq:       sip.CSeq{Seq: 1, Method: sip.MethodInvite},
		Via: sip.Via{Transport: "UDP", SentBy: fmt.Sprintf("%s:%d", a.host.IP(), a.sipPort),
			Params: map[string]string{"branch": a.idgen.Branch()}},
		Contact:  &contact,
		Body:     sess.Marshal(),
		BodyType: "application/sdp",
	})
	// The "carefully crafted" malformation: a second From header.
	invite.Headers.Add(sip.HdrFrom, sip.Address{URI: b.victimURI}.WithTag("x").String())
	b.invite = invite

	a.onResponse = func(_ netip.AddrPort, m *sip.Message) {
		if m.CallID() != b.callID || m.StatusCode != sip.StatusOK {
			return
		}
		cseq, err := m.CSeq()
		if err != nil || cseq.Method != sip.MethodInvite || b.Established {
			return
		}
		b.complete(m, mediaFor)
	}
	return a.Send(a.sipPort, b.proxyAddr, invite.Marshal())
}

// complete ACKs the 200 and starts pushing media to the callee.
func (b *BillingFraud) complete(ok200 *sip.Message, mediaFor time.Duration) {
	a := b.attacker
	b.Established = true
	from := ok200.Headers.Get(sip.HdrFrom)
	to := ok200.Headers.Get(sip.HdrTo)
	contactURI := b.calleeURI
	if c, err := ok200.Contact(); err == nil {
		contactURI = c.URI
	}
	ack := &sip.Message{Method: sip.MethodAck, RequestURI: contactURI.String()}
	ack.Headers.Add(sip.HdrVia, sip.Via{Transport: "UDP",
		SentBy: fmt.Sprintf("%s:%d", a.host.IP(), a.sipPort),
		Params: map[string]string{"branch": a.idgen.Branch()}}.String())
	ack.Headers.Add(sip.HdrFrom, from)
	ack.Headers.Add(sip.HdrTo, to)
	ack.Headers.Add(sip.HdrCallID, b.callID)
	ack.Headers.Add(sip.HdrCSeq, sip.CSeq{Seq: 1, Method: sip.MethodAck}.String())
	if rr := ok200.Headers.Get(sip.HdrRecordRoute); rr != "" {
		ack.Headers.Add(sip.HdrRoute, rr)
		_ = a.Send(a.sipPort, b.proxyAddr, ack.Marshal())
	} else if ip, err := netip.ParseAddr(contactURI.Host); err == nil {
		_ = a.Send(a.sipPort, netip.AddrPortFrom(ip, contactURI.EffectivePort()), ack.Marshal())
	}

	// Media to the callee, billed to the victim.
	var calleeMedia netip.AddrPort
	if sess, err := sdp.Parse(ok200.Body); err == nil {
		if m, ok := sess.MediaEndpoint("audio"); ok {
			calleeMedia = m
		}
	}
	if !calleeMedia.IsValid() {
		return
	}
	ssrc := a.host.Sim().Rand().Uint32()
	seq := uint16(a.host.Sim().Rand().Intn(1 << 16))
	var ts uint32
	deadline := a.host.Sim().Now() + mediaFor
	tone := rtp.NewToneGenerator(300, 8000, 8000)
	a.host.Sim().Every(0, 20*time.Millisecond, func() bool {
		if a.host.Sim().Now() >= deadline {
			return false
		}
		pkt := rtp.Packet{
			Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: seq, Timestamp: ts, SSRC: ssrc},
			Payload: rtp.EncodePCMU(tone.Next(160)),
		}
		seq++
		ts += 160
		if buf, err := pkt.Marshal(); err == nil {
			if err := a.Send(b.mediaPort, calleeMedia, buf); err == nil {
				b.RTPSent++
			}
		}
		return true
	})
}
