// Package capture implements SCAP, a minimal self-describing capture file
// format for simulated Ethernet frames, and reads standard pcap/pcapng
// captures alongside it (see pcap.go; the container is auto-detected by
// magic number). It plays the role tcpdump played in the SCIDIVE
// testbed: scenarios record hub traffic to a file and the IDS analyzes
// it offline — and a real tcpdump capture of Ethernet traffic feeds the
// same replay paths.
//
// Format (all integers big-endian):
//
//	magic   [4]byte  "SCAP"
//	version uint16   currently 1
//	records: { ts uint64 (virtual nanoseconds) | len uint32 | frame [len]byte }*
package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

var magic = [4]byte{'S', 'C', 'A', 'P'}

// Version is the current SCAP file version.
const Version = 1

// MaxFrameLen bounds a single record to guard against corrupt files.
const MaxFrameLen = 1 << 16

// Record is one captured frame with its virtual capture timestamp.
type Record struct {
	Time  time.Duration
	Frame []byte
}

// Writer writes SCAP files. Close flushes buffered data; it does not
// close the underlying writer.
type Writer struct {
	bw      *bufio.Writer
	started bool
	count   int
}

// NewWriter returns a Writer emitting to w. The header is written lazily
// on the first WriteFrame (or by Close for an empty capture).
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	if w.started {
		return nil
	}
	w.started = true
	if _, err := w.bw.Write(magic[:]); err != nil {
		return err
	}
	var v [2]byte
	binary.BigEndian.PutUint16(v[:], Version)
	_, err := w.bw.Write(v[:])
	return err
}

// WriteFrame appends one frame observed at virtual time ts.
func (w *Writer) WriteFrame(ts time.Duration, frame []byte) error {
	if len(frame) > MaxFrameLen {
		return fmt.Errorf("capture: frame of %d bytes exceeds maximum %d", len(frame), MaxFrameLen)
	}
	if err := w.writeHeader(); err != nil {
		return fmt.Errorf("capture: write header: %w", err)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(ts))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(frame)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("capture: write record header: %w", err)
	}
	if _, err := w.bw.Write(frame); err != nil {
		return fmt.Errorf("capture: write frame: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of frames written so far.
func (w *Writer) Count() int { return w.count }

// Close flushes the writer, emitting the header even for empty captures.
func (w *Writer) Close() error {
	if err := w.writeHeader(); err != nil {
		return fmt.Errorf("capture: write header: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("capture: flush: %w", err)
	}
	return nil
}

// fileFormat identifies which capture container a Reader is decoding.
type fileFormat uint8

const (
	fmtSCAP fileFormat = iota
	fmtPcap
	fmtPcapNG
)

// Reader reads capture files: the native SCAP format, classic pcap, and
// pcapng. The format is auto-detected from the file's magic number on
// the first read; every consumer (Next, ReadAll, Replay,
// ReplayPartitioned) sees the same Record stream regardless of
// container. Only Ethernet link-layer captures are accepted — the
// decode pipeline starts at the Ethernet header.
type Reader struct {
	br      *bufio.Reader
	started bool
	format  fileFormat
	off     int64 // bytes consumed from the underlying stream
	rec     int   // records returned so far
	pcap    pcapState
	ng      pcapngState
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// readFull fills p from the stream, advancing the reader's byte offset
// by however much was actually read.
func (r *Reader) readFull(p []byte) error {
	n, err := io.ReadFull(r.br, p)
	r.off += int64(n)
	return err
}

// discard skips n bytes, advancing the byte offset.
func (r *Reader) discard(n int) error {
	m, err := r.br.Discard(n)
	r.off += int64(m)
	return err
}

// corruptf reports a malformed record with enough context to find it in
// the file: the record's index and the byte offset its framing starts at.
func (r *Reader) corruptf(start int64, format string, args ...any) error {
	return fmt.Errorf("capture: record %d at offset %d: %s", r.rec, start, fmt.Sprintf(format, args...))
}

func (r *Reader) readHeader() error {
	if r.started {
		return nil
	}
	r.started = true
	head, err := r.br.Peek(4)
	if err != nil {
		return fmt.Errorf("capture: read header: %w", err)
	}
	switch {
	case [4]byte(head) == magic:
		var hdr [6]byte
		if err := r.readFull(hdr[:]); err != nil {
			return fmt.Errorf("capture: read header: %w", err)
		}
		if v := binary.BigEndian.Uint16(hdr[4:6]); v != Version {
			return fmt.Errorf("capture: unsupported version %d", v)
		}
		r.format = fmtSCAP
		return nil
	case isPcapMagic(head):
		r.format = fmtPcap
		return r.readPcapHeader()
	case binary.BigEndian.Uint32(head) == pcapngBlockSHB:
		// pcapng opens with a Section Header Block; the block loop in
		// nextPcapNG parses it (and any later section boundaries).
		r.format = fmtPcapNG
		return nil
	default:
		return errors.New("capture: bad magic: not an SCAP, pcap or pcapng file")
	}
}

// Next returns the next record, or io.EOF at end of file. The returned
// frame is freshly allocated and owned by the caller.
func (r *Reader) Next() (Record, error) {
	return r.nextInto(nil)
}

// nextInto reads the next record into buf when its capacity suffices,
// allocating only when the frame outgrows it. The returned Record's
// Frame aliases buf on reuse.
func (r *Reader) nextInto(buf []byte) (Record, error) {
	if err := r.readHeader(); err != nil {
		return Record{}, err
	}
	var rec Record
	var err error
	switch r.format {
	case fmtPcap:
		rec, err = r.nextPcap(buf)
	case fmtPcapNG:
		rec, err = r.nextPcapNG(buf)
	default:
		rec, err = r.nextSCAP(buf)
	}
	if err == nil {
		r.rec++
	}
	return rec, err
}

// nextSCAP decodes one native SCAP record.
func (r *Reader) nextSCAP(buf []byte) (Record, error) {
	start := r.off
	var hdr [12]byte
	if err := r.readFull(hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("capture: read record header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > MaxFrameLen {
		return Record{}, r.corruptf(start, "corrupt record length %d exceeds maximum %d", n, MaxFrameLen)
	}
	frame := frameInto(buf, n)
	if err := r.readFull(frame); err != nil {
		return Record{}, fmt.Errorf("capture: read frame body: %w", err)
	}
	return Record{Time: time.Duration(binary.BigEndian.Uint64(hdr[0:8])), Frame: frame}, nil
}

// frameInto returns an n-byte frame slice, reusing buf's storage when it
// is large enough.
func frameInto(buf []byte, n uint32) []byte {
	if uint32(cap(buf)) >= n {
		return buf[:n]
	}
	return make([]byte, n)
}

// FrameFunc consumes one captured frame. It is the feed signature shared
// by netsim taps and both IDS engines (Engine.HandleFrame and
// ShardedEngine.HandleFrame satisfy it).
//
// Aliasing contract: the frame slice is only valid for the duration of
// the call — feeders (Replay in particular) reuse one buffer across
// frames, so an implementation that retains frame bytes past its return
// must copy them first. Both IDS engines' serial paths copy everything
// they keep (the SIP parser copies bodies, the reassembler copies
// fragment payloads); the sharded engine's ReplayCapture copies each
// frame before routing because its router retains frames in flight.
type FrameFunc func(at time.Duration, frame []byte)

// Replay streams every remaining record of r into fn in capture order,
// reusing a single frame buffer across records (see the FrameFunc
// aliasing contract). It returns nil at clean end-of-file.
func Replay(r *Reader, fn FrameFunc) error {
	var buf []byte
	for {
		rec, err := r.nextInto(buf)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		fn(rec.Time, rec.Frame)
		buf = rec.Frame[:cap(rec.Frame)]
	}
}

// ReplayPartitioned deals the remaining records of r round-robin across
// the consumers: consumer i receives records i, i+N, i+2N, … of the
// capture, each on its own goroutine, in capture order within the lane.
// Cross-lane ordering is unspecified — a consumer that needs the global
// order must reconstruct it (the sharded engine's ingest tier does this
// by sequence-tagging at the deal). The FrameFunc aliasing contract
// holds per lane: each lane owns a small ring of buffers and a buffer is
// only reused after the consumer's call on it has returned.
//
// With a single consumer this is exactly Replay. It returns nil at clean
// end-of-file; a read error stops the deal, drains the lanes, and is
// returned.
func ReplayPartitioned(r *Reader, fns ...FrameFunc) error {
	if len(fns) == 0 {
		return errors.New("capture: ReplayPartitioned needs at least one consumer")
	}
	if len(fns) == 1 {
		return Replay(r, fns[0])
	}
	type deal struct {
		at    time.Duration
		frame []byte
	}
	const depth = 2 // per-lane double buffer: the reader fills one while the consumer holds the other
	ins := make([]chan deal, len(fns))
	free := make([]chan []byte, len(fns))
	var wg sync.WaitGroup
	for i := range fns {
		ins[i] = make(chan deal, depth)
		free[i] = make(chan []byte, depth)
		for j := 0; j < depth; j++ {
			free[i] <- nil // nextInto allocates on first use, then the buffer recycles
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for d := range ins[i] {
				fns[i](d.at, d.frame)
				free[i] <- d.frame[:cap(d.frame)] // the call returned: safe to reuse
			}
		}(i)
	}
	var err error
	for i := 0; ; i++ {
		lane := i % len(fns)
		var rec Record
		rec, err = r.nextInto(<-free[lane])
		if err != nil {
			break
		}
		ins[lane] <- deal{rec.Time, rec.Frame}
	}
	for _, in := range ins {
		close(in)
	}
	wg.Wait()
	if errors.Is(err, io.EOF) {
		return nil
	}
	return err
}

// ReadAll consumes the remaining records.
func (r *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
