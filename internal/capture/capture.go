// Package capture implements SCAP, a minimal self-describing capture file
// format for simulated Ethernet frames. It plays the role tcpdump played
// in the SCIDIVE testbed: scenarios record hub traffic to a file and the
// IDS analyzes it offline.
//
// Format (all integers big-endian):
//
//	magic   [4]byte  "SCAP"
//	version uint16   currently 1
//	records: { ts uint64 (virtual nanoseconds) | len uint32 | frame [len]byte }*
package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

var magic = [4]byte{'S', 'C', 'A', 'P'}

// Version is the current SCAP file version.
const Version = 1

// MaxFrameLen bounds a single record to guard against corrupt files.
const MaxFrameLen = 1 << 16

// Record is one captured frame with its virtual capture timestamp.
type Record struct {
	Time  time.Duration
	Frame []byte
}

// Writer writes SCAP files. Close flushes buffered data; it does not
// close the underlying writer.
type Writer struct {
	bw      *bufio.Writer
	started bool
	count   int
}

// NewWriter returns a Writer emitting to w. The header is written lazily
// on the first WriteFrame (or by Close for an empty capture).
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	if w.started {
		return nil
	}
	w.started = true
	if _, err := w.bw.Write(magic[:]); err != nil {
		return err
	}
	var v [2]byte
	binary.BigEndian.PutUint16(v[:], Version)
	_, err := w.bw.Write(v[:])
	return err
}

// WriteFrame appends one frame observed at virtual time ts.
func (w *Writer) WriteFrame(ts time.Duration, frame []byte) error {
	if len(frame) > MaxFrameLen {
		return fmt.Errorf("capture: frame of %d bytes exceeds maximum %d", len(frame), MaxFrameLen)
	}
	if err := w.writeHeader(); err != nil {
		return fmt.Errorf("capture: write header: %w", err)
	}
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(ts))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(frame)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("capture: write record header: %w", err)
	}
	if _, err := w.bw.Write(frame); err != nil {
		return fmt.Errorf("capture: write frame: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of frames written so far.
func (w *Writer) Count() int { return w.count }

// Close flushes the writer, emitting the header even for empty captures.
func (w *Writer) Close() error {
	if err := w.writeHeader(); err != nil {
		return fmt.Errorf("capture: write header: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("capture: flush: %w", err)
	}
	return nil
}

// Reader reads SCAP files.
type Reader struct {
	br      *bufio.Reader
	started bool
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

func (r *Reader) readHeader() error {
	if r.started {
		return nil
	}
	r.started = true
	var hdr [6]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return fmt.Errorf("capture: read header: %w", err)
	}
	if [4]byte(hdr[0:4]) != magic {
		return errors.New("capture: bad magic: not an SCAP file")
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != Version {
		return fmt.Errorf("capture: unsupported version %d", v)
	}
	return nil
}

// Next returns the next record, or io.EOF at end of file. The returned
// frame is freshly allocated and owned by the caller.
func (r *Reader) Next() (Record, error) {
	return r.nextInto(nil)
}

// nextInto reads the next record into buf when its capacity suffices,
// allocating only when the frame outgrows it. The returned Record's
// Frame aliases buf on reuse.
func (r *Reader) nextInto(buf []byte) (Record, error) {
	if err := r.readHeader(); err != nil {
		return Record{}, err
	}
	var hdr [12]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("capture: read record header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > MaxFrameLen {
		return Record{}, fmt.Errorf("capture: corrupt record length %d", n)
	}
	var frame []byte
	if uint32(cap(buf)) >= n {
		frame = buf[:n]
	} else {
		frame = make([]byte, n)
	}
	if _, err := io.ReadFull(r.br, frame); err != nil {
		return Record{}, fmt.Errorf("capture: read frame body: %w", err)
	}
	return Record{Time: time.Duration(binary.BigEndian.Uint64(hdr[0:8])), Frame: frame}, nil
}

// FrameFunc consumes one captured frame. It is the feed signature shared
// by netsim taps and both IDS engines (Engine.HandleFrame and
// ShardedEngine.HandleFrame satisfy it).
//
// Aliasing contract: the frame slice is only valid for the duration of
// the call — feeders (Replay in particular) reuse one buffer across
// frames, so an implementation that retains frame bytes past its return
// must copy them first. Both IDS engines' serial paths copy everything
// they keep (the SIP parser copies bodies, the reassembler copies
// fragment payloads); the sharded engine's ReplayCapture copies each
// frame before routing because its router retains frames in flight.
type FrameFunc func(at time.Duration, frame []byte)

// Replay streams every remaining record of r into fn in capture order,
// reusing a single frame buffer across records (see the FrameFunc
// aliasing contract). It returns nil at clean end-of-file.
func Replay(r *Reader, fn FrameFunc) error {
	var buf []byte
	for {
		rec, err := r.nextInto(buf)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		fn(rec.Time, rec.Frame)
		buf = rec.Frame[:cap(rec.Frame)]
	}
}

// ReplayPartitioned deals the remaining records of r round-robin across
// the consumers: consumer i receives records i, i+N, i+2N, … of the
// capture, each on its own goroutine, in capture order within the lane.
// Cross-lane ordering is unspecified — a consumer that needs the global
// order must reconstruct it (the sharded engine's ingest tier does this
// by sequence-tagging at the deal). The FrameFunc aliasing contract
// holds per lane: each lane owns a small ring of buffers and a buffer is
// only reused after the consumer's call on it has returned.
//
// With a single consumer this is exactly Replay. It returns nil at clean
// end-of-file; a read error stops the deal, drains the lanes, and is
// returned.
func ReplayPartitioned(r *Reader, fns ...FrameFunc) error {
	if len(fns) == 0 {
		return errors.New("capture: ReplayPartitioned needs at least one consumer")
	}
	if len(fns) == 1 {
		return Replay(r, fns[0])
	}
	type deal struct {
		at    time.Duration
		frame []byte
	}
	const depth = 2 // per-lane double buffer: the reader fills one while the consumer holds the other
	ins := make([]chan deal, len(fns))
	free := make([]chan []byte, len(fns))
	var wg sync.WaitGroup
	for i := range fns {
		ins[i] = make(chan deal, depth)
		free[i] = make(chan []byte, depth)
		for j := 0; j < depth; j++ {
			free[i] <- nil // nextInto allocates on first use, then the buffer recycles
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for d := range ins[i] {
				fns[i](d.at, d.frame)
				free[i] <- d.frame[:cap(d.frame)] // the call returned: safe to reuse
			}
		}(i)
	}
	var err error
	for i := 0; ; i++ {
		lane := i % len(fns)
		var rec Record
		rec, err = r.nextInto(<-free[lane])
		if err != nil {
			break
		}
		ins[lane] <- deal{rec.Time, rec.Frame}
	}
	for _, in := range ins {
		close(in)
	}
	wg.Wait()
	if errors.Is(err, io.EOF) {
		return nil
	}
	return err
}

// ReadAll consumes the remaining records.
func (r *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}
