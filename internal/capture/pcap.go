package capture

// Standard pcap and pcapng decoding, so real captures (tcpdump, tshark,
// Wireshark exports) can feed the engine exactly like native SCAP files.
// Both formats are read-only here: the simulator keeps writing SCAP, and
// NewReader auto-detects which of the three containers it was handed.
//
// Scope: Ethernet link layer only (LINKTYPE_ETHERNET = 1) — the decode
// pipeline starts at the Ethernet header, so a capture taken on any
// other link type is rejected up front with a clear error rather than
// silently producing garbage frames. Classic pcap supports both byte
// orders and both timestamp resolutions (microsecond and nanosecond
// magics); pcapng supports Section Header, Interface Description,
// Enhanced Packet and Simple Packet blocks (per-interface if_tsresol
// honored, unknown block types skipped).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Classic pcap magic numbers, as they appear big-endian at offset 0.
// The byte-swapped values mean the file was written little-endian.
const (
	pcapMagicMicroBE = 0xa1b2c3d4
	pcapMagicMicroLE = 0xd4c3b2a1
	pcapMagicNanoBE  = 0xa1b23c4d
	pcapMagicNanoLE  = 0x4d3cb2a1
)

// pcapng block types (section-relative byte order; the SHB type is a
// palindrome so it reads the same either way).
const (
	pcapngBlockSHB = 0x0a0d0d0a
	pcapngBlockIDB = 0x00000001
	pcapngBlockSPB = 0x00000003
	pcapngBlockEPB = 0x00000006

	pcapngByteOrderMagic = 0x1a2b3c4d
)

// linktypeEthernet is the only link layer the decode pipeline accepts.
const linktypeEthernet = 1

func isPcapMagic(head []byte) bool {
	switch binary.BigEndian.Uint32(head) {
	case pcapMagicMicroBE, pcapMagicMicroLE, pcapMagicNanoBE, pcapMagicNanoLE:
		return true
	}
	return false
}

// pcapState is the per-file state of a classic pcap: the byte order the
// magic announced and whether timestamps carry nanoseconds.
type pcapState struct {
	order binary.ByteOrder
	nanos bool
}

// readPcapHeader consumes the 24-byte classic pcap global header.
func (r *Reader) readPcapHeader() error {
	var hdr [24]byte
	if err := r.readFull(hdr[:]); err != nil {
		return fmt.Errorf("capture: read pcap header: %w", err)
	}
	switch binary.BigEndian.Uint32(hdr[0:4]) {
	case pcapMagicMicroBE:
		r.pcap = pcapState{order: binary.BigEndian}
	case pcapMagicMicroLE:
		r.pcap = pcapState{order: binary.LittleEndian}
	case pcapMagicNanoBE:
		r.pcap = pcapState{order: binary.BigEndian, nanos: true}
	case pcapMagicNanoLE:
		r.pcap = pcapState{order: binary.LittleEndian, nanos: true}
	}
	if major := r.pcap.order.Uint16(hdr[4:6]); major != 2 {
		return fmt.Errorf("capture: unsupported pcap version %d", major)
	}
	if lt := r.pcap.order.Uint32(hdr[20:24]); lt != linktypeEthernet {
		return fmt.Errorf("capture: pcap linktype %d unsupported (Ethernet captures only)", lt)
	}
	return nil
}

// nextPcap decodes one classic pcap record.
func (r *Reader) nextPcap(buf []byte) (Record, error) {
	start := r.off
	var hdr [16]byte
	if err := r.readFull(hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("capture: read pcap record header: %w", err)
	}
	incl := r.pcap.order.Uint32(hdr[8:12])
	if incl > MaxFrameLen {
		return Record{}, r.corruptf(start, "corrupt record length %d exceeds maximum %d", incl, MaxFrameLen)
	}
	sub := time.Duration(r.pcap.order.Uint32(hdr[4:8]))
	if !r.pcap.nanos {
		sub *= time.Microsecond
	}
	ts := time.Duration(r.pcap.order.Uint32(hdr[0:4]))*time.Second + sub
	frame := frameInto(buf, incl)
	if err := r.readFull(frame); err != nil {
		return Record{}, fmt.Errorf("capture: read frame body: %w", err)
	}
	return Record{Time: ts, Frame: frame}, nil
}

// ngIface is one pcapng interface's decode parameters: its timestamp
// resolution (if_tsresol option; the default is microseconds) and the
// snap length Simple Packet Blocks truncate to.
type ngIface struct {
	pow2    bool  // resolution is 2^-res instead of 10^-res
	res     uint8 // negative power per pow2
	snaplen uint32
}

// pcapngState is the per-section state of a pcapng file. A new Section
// Header Block resets it (byte order and interfaces are section-scoped).
type pcapngState struct {
	order  binary.ByteOrder
	ifaces []ngIface
}

// nanos converts an interface-resolution tick count to a Duration.
func (ifc *ngIface) nanos(ticks uint64) time.Duration {
	if ifc.pow2 {
		// Split so the sub-second remainder scales without overflow.
		shift := ifc.res
		if shift > 63 {
			shift = 63
		}
		whole := ticks >> shift
		frac := ticks & (1<<shift - 1)
		return time.Duration(whole)*time.Second + time.Duration(frac*uint64(time.Second)>>shift)
	}
	switch {
	case ifc.res == 9:
		return time.Duration(ticks)
	case ifc.res < 9:
		mult := uint64(1)
		for i := ifc.res; i < 9; i++ {
			mult *= 10
		}
		return time.Duration(ticks * mult)
	default:
		div := uint64(1)
		for i := uint8(9); i < ifc.res; i++ {
			div *= 10
		}
		return time.Duration(ticks / div)
	}
}

// nextPcapNG walks pcapng blocks until one yields a packet record,
// skipping the bookkeeping blocks (and any block types it does not
// know) by their declared length.
func (r *Reader) nextPcapNG(buf []byte) (Record, error) {
	for {
		start := r.off
		var hdr [8]byte
		if err := r.readFull(hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("capture: read pcapng block header: %w", err)
		}
		if binary.BigEndian.Uint32(hdr[0:4]) == pcapngBlockSHB {
			if err := r.readPcapNGSection(start, hdr); err != nil {
				return Record{}, err
			}
			continue
		}
		if r.ng.order == nil {
			return Record{}, r.corruptf(start, "pcapng block before section header")
		}
		btype := r.ng.order.Uint32(hdr[0:4])
		blen := r.ng.order.Uint32(hdr[4:8])
		if blen < 12 || blen%4 != 0 {
			return Record{}, r.corruptf(start, "corrupt pcapng block length %d", blen)
		}
		body := int(blen) - 12
		var rec Record
		var got bool
		var err error
		switch btype {
		case pcapngBlockIDB:
			err = r.readPcapNGInterface(start, body)
		case pcapngBlockEPB:
			rec, got, err = r.readPcapNGPacket(start, body, buf)
		case pcapngBlockSPB:
			rec, got, err = r.readPcapNGSimple(start, body, buf)
		default:
			err = r.discard(body)
		}
		if err != nil {
			return Record{}, err
		}
		var trailer [4]byte
		if err := r.readFull(trailer[:]); err != nil {
			return Record{}, fmt.Errorf("capture: read pcapng block trailer: %w", err)
		}
		if r.ng.order.Uint32(trailer[:]) != blen {
			return Record{}, r.corruptf(start, "pcapng block trailer length %d does not match header %d",
				r.ng.order.Uint32(trailer[:]), blen)
		}
		if got {
			return rec, nil
		}
	}
}

// readPcapNGSection finishes parsing a Section Header Block whose first
// 8 bytes are already in hdr, establishing the section's byte order and
// resetting the interface table.
func (r *Reader) readPcapNGSection(start int64, hdr [8]byte) error {
	var rest [8]byte // byte-order magic + version
	if err := r.readFull(rest[:]); err != nil {
		return fmt.Errorf("capture: read pcapng section header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.BigEndian.Uint32(rest[0:4]) {
	case pcapngByteOrderMagic:
		order = binary.BigEndian
	case 0x4d3c2b1a: // pcapngByteOrderMagic byte-swapped
		order = binary.LittleEndian
	default:
		return r.corruptf(start, "pcapng section has corrupt byte-order magic")
	}
	if major := order.Uint16(rest[4:6]); major != 1 {
		return fmt.Errorf("capture: unsupported pcapng version %d", major)
	}
	blen := order.Uint32(hdr[4:8])
	if blen < 28 || blen%4 != 0 {
		return r.corruptf(start, "corrupt pcapng block length %d", blen)
	}
	// Skip section length + options, then verify the trailing length.
	if err := r.discard(int(blen) - 20); err != nil {
		return fmt.Errorf("capture: read pcapng section header: %w", err)
	}
	var trailer [4]byte
	if err := r.readFull(trailer[:]); err != nil {
		return fmt.Errorf("capture: read pcapng block trailer: %w", err)
	}
	if order.Uint32(trailer[:]) != blen {
		return r.corruptf(start, "pcapng block trailer length %d does not match header %d",
			order.Uint32(trailer[:]), blen)
	}
	r.ng = pcapngState{order: order}
	return nil
}

// readPcapNGInterface parses an Interface Description Block body,
// rejecting non-Ethernet link types and honoring if_tsresol.
func (r *Reader) readPcapNGInterface(start int64, body int) error {
	if body < 8 {
		return r.corruptf(start, "pcapng interface block truncated (%d byte body)", body)
	}
	b := make([]byte, body)
	if err := r.readFull(b); err != nil {
		return fmt.Errorf("capture: read pcapng interface block: %w", err)
	}
	if lt := r.ng.order.Uint16(b[0:2]); lt != linktypeEthernet {
		return fmt.Errorf("capture: pcapng interface %d has linktype %d unsupported (Ethernet captures only)",
			len(r.ng.ifaces), lt)
	}
	ifc := ngIface{res: 6, snaplen: r.ng.order.Uint32(b[4:8])}
	// Walk the options for if_tsresol (code 9, one byte: a negative
	// power of 10, or of 2 when the high bit is set).
	for opts := b[8:]; len(opts) >= 4; {
		code := r.ng.order.Uint16(opts[0:2])
		olen := int(r.ng.order.Uint16(opts[2:4]))
		padded := (olen + 3) &^ 3
		if code == 0 || len(opts) < 4+olen {
			break
		}
		if code == 9 && olen == 1 {
			v := opts[4]
			ifc.pow2 = v&0x80 != 0
			ifc.res = v & 0x7f
		}
		if len(opts) < 4+padded {
			break
		}
		opts = opts[4+padded:]
	}
	r.ng.ifaces = append(r.ng.ifaces, ifc)
	return nil
}

// readPcapNGPacket parses an Enhanced Packet Block body into a Record.
func (r *Reader) readPcapNGPacket(start int64, body int, buf []byte) (Record, bool, error) {
	if body < 20 {
		return Record{}, false, r.corruptf(start, "pcapng packet block truncated (%d byte body)", body)
	}
	var fixed [20]byte
	if err := r.readFull(fixed[:]); err != nil {
		return Record{}, false, fmt.Errorf("capture: read pcapng packet block: %w", err)
	}
	ifidx := r.ng.order.Uint32(fixed[0:4])
	if int(ifidx) >= len(r.ng.ifaces) {
		return Record{}, false, r.corruptf(start, "pcapng packet references interface %d of %d", ifidx, len(r.ng.ifaces))
	}
	capl := r.ng.order.Uint32(fixed[12:16])
	if capl > MaxFrameLen {
		return Record{}, false, r.corruptf(start, "corrupt record length %d exceeds maximum %d", capl, MaxFrameLen)
	}
	padded := (int(capl) + 3) &^ 3
	if body < 20+padded {
		return Record{}, false, r.corruptf(start, "pcapng packet block data overruns block (%d bytes in %d byte body)", capl, body)
	}
	frame := frameInto(buf, capl)
	if err := r.readFull(frame); err != nil {
		return Record{}, false, fmt.Errorf("capture: read frame body: %w", err)
	}
	// Padding plus any trailing options.
	if err := r.discard(body - 20 - int(capl)); err != nil {
		return Record{}, false, fmt.Errorf("capture: read pcapng packet block: %w", err)
	}
	ticks := uint64(r.ng.order.Uint32(fixed[4:8]))<<32 | uint64(r.ng.order.Uint32(fixed[8:12]))
	return Record{Time: r.ng.ifaces[ifidx].nanos(ticks), Frame: frame}, true, nil
}

// readPcapNGSimple parses a Simple Packet Block body. SPBs carry no
// timestamp and implicitly use the first interface; the captured length
// is the original length clipped to that interface's snap length.
func (r *Reader) readPcapNGSimple(start int64, body int, buf []byte) (Record, bool, error) {
	if len(r.ng.ifaces) == 0 {
		return Record{}, false, r.corruptf(start, "pcapng simple packet block before any interface block")
	}
	if body < 4 {
		return Record{}, false, r.corruptf(start, "pcapng simple packet block truncated (%d byte body)", body)
	}
	var fixed [4]byte
	if err := r.readFull(fixed[:]); err != nil {
		return Record{}, false, fmt.Errorf("capture: read pcapng simple packet block: %w", err)
	}
	capl := r.ng.order.Uint32(fixed[:])
	if sl := r.ng.ifaces[0].snaplen; sl != 0 && capl > sl {
		capl = sl
	}
	if capl > MaxFrameLen {
		return Record{}, false, r.corruptf(start, "corrupt record length %d exceeds maximum %d", capl, MaxFrameLen)
	}
	padded := (int(capl) + 3) &^ 3
	if body-4 < padded {
		return Record{}, false, r.corruptf(start, "pcapng simple packet block data overruns block (%d bytes in %d byte body)", capl, body)
	}
	frame := frameInto(buf, capl)
	if err := r.readFull(frame); err != nil {
		return Record{}, false, fmt.Errorf("capture: read frame body: %w", err)
	}
	if err := r.discard(body - 4 - int(capl)); err != nil {
		return Record{}, false, fmt.Errorf("capture: read pcapng simple packet block: %w", err)
	}
	return Record{Frame: frame}, true, nil
}
