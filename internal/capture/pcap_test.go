package capture

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"time"
)

// --- synthetic capture builders ---

func u16(order binary.ByteOrder, v uint16) []byte {
	var b [2]byte
	order.PutUint16(b[:], v)
	return b[:]
}

func u32(order binary.ByteOrder, v uint32) []byte {
	var b [4]byte
	order.PutUint32(b[:], v)
	return b[:]
}

// pcapFile builds a classic pcap with the given records.
func pcapFile(order binary.ByteOrder, nanos bool, linktype uint32, recs []Record) []byte {
	var f []byte
	magic := uint32(pcapMagicMicroBE)
	if nanos {
		magic = pcapMagicNanoBE
	}
	if order == binary.LittleEndian {
		// The magic is defined as written by the file's native order;
		// serialize it in that order so the big-endian probe sees the
		// swapped constant.
		f = append(f, u32(binary.LittleEndian, magic)...)
	} else {
		f = append(f, u32(binary.BigEndian, magic)...)
	}
	f = append(f, u16(order, 2)...)                   // version major
	f = append(f, u16(order, 4)...)                   // version minor
	f = append(f, u32(order, 0)...)                   // thiszone
	f = append(f, u32(order, 0)...)                   // sigfigs
	f = append(f, u32(order, uint32(MaxFrameLen))...) // snaplen
	f = append(f, u32(order, linktype)...)
	for _, r := range recs {
		sec := uint32(r.Time / time.Second)
		rem := r.Time % time.Second
		sub := uint32(rem / time.Nanosecond)
		if !nanos {
			sub = uint32(rem / time.Microsecond)
		}
		f = append(f, u32(order, sec)...)
		f = append(f, u32(order, sub)...)
		f = append(f, u32(order, uint32(len(r.Frame)))...) // incl_len
		f = append(f, u32(order, uint32(len(r.Frame)))...) // orig_len
		f = append(f, r.Frame...)
	}
	return f
}

// ngBlock frames one pcapng block: type, length, body (padded by the
// caller), trailing length.
func ngBlock(order binary.ByteOrder, btype uint32, body []byte) []byte {
	blen := uint32(len(body) + 12)
	var f []byte
	f = append(f, u32(order, btype)...)
	f = append(f, u32(order, blen)...)
	f = append(f, body...)
	f = append(f, u32(order, blen)...)
	return f
}

func ngSection(order binary.ByteOrder) []byte {
	var body []byte
	body = append(body, u32(order, pcapngByteOrderMagic)...)
	body = append(body, u16(order, 1)...)                 // version major
	body = append(body, u16(order, 0)...)                 // version minor
	body = append(body, bytes.Repeat([]byte{0xff}, 8)...) // section length: unknown
	return ngBlock(order, pcapngBlockSHB, body)
}

func ngInterface(order binary.ByteOrder, linktype uint16, opts []byte) []byte {
	var body []byte
	body = append(body, u16(order, linktype)...)
	body = append(body, u16(order, 0)...) // reserved
	body = append(body, u32(order, 0)...) // snaplen: unlimited
	body = append(body, opts...)
	return ngBlock(order, pcapngBlockIDB, body)
}

// ngTsresolOpt encodes an if_tsresol option (code 9) plus end-of-options.
func ngTsresolOpt(order binary.ByteOrder, v byte) []byte {
	var o []byte
	o = append(o, u16(order, 9)...)
	o = append(o, u16(order, 1)...)
	o = append(o, v, 0, 0, 0) // value + padding to 4
	o = append(o, u16(order, 0)...)
	o = append(o, u16(order, 0)...)
	return o
}

func ngPacket(order binary.ByteOrder, iface uint32, ticks uint64, frame []byte) []byte {
	var body []byte
	body = append(body, u32(order, iface)...)
	body = append(body, u32(order, uint32(ticks>>32))...)
	body = append(body, u32(order, uint32(ticks))...)
	body = append(body, u32(order, uint32(len(frame)))...) // captured
	body = append(body, u32(order, uint32(len(frame)))...) // original
	body = append(body, frame...)
	for len(body)%4 != 0 {
		body = append(body, 0)
	}
	return ngBlock(order, pcapngBlockEPB, body)
}

func ngSimple(order binary.ByteOrder, frame []byte) []byte {
	var body []byte
	body = append(body, u32(order, uint32(len(frame)))...)
	body = append(body, frame...)
	for len(body)%4 != 0 {
		body = append(body, 0)
	}
	return ngBlock(order, pcapngBlockSPB, body)
}

var pcapTestRecs = []Record{
	{Time: 0, Frame: []byte("first frame")},
	{Time: 1500 * time.Microsecond, Frame: []byte("x")},
	{Time: 2*time.Second + 123456789*time.Nanosecond, Frame: bytes.Repeat([]byte{0xab}, 300)},
}

func checkRecords(t *testing.T, got, want []Record, tsExact bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Frame, want[i].Frame) {
			t.Errorf("record %d frame mismatch", i)
		}
		if tsExact && got[i].Time != want[i].Time {
			t.Errorf("record %d time %v, want %v", i, got[i].Time, want[i].Time)
		}
	}
}

// --- decode tests ---

// TestPcapRoundTrip reads synthetic classic pcaps in all four magic
// variants through the auto-detecting Reader.
func TestPcapRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		order binary.ByteOrder
		nanos bool
	}{
		{"be-micro", binary.BigEndian, false},
		{"le-micro", binary.LittleEndian, false},
		{"be-nano", binary.BigEndian, true},
		{"le-nano", binary.LittleEndian, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := pcapFile(tc.order, tc.nanos, linktypeEthernet, pcapTestRecs)
			recs, err := NewReader(bytes.NewReader(f)).ReadAll()
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			// Microsecond files round timestamps down to the microsecond.
			checkRecords(t, recs, pcapTestRecs, tc.nanos)
			if !tc.nanos {
				for i, r := range recs {
					if want := pcapTestRecs[i].Time.Truncate(time.Microsecond); r.Time != want {
						t.Errorf("record %d time %v, want %v", i, r.Time, want)
					}
				}
			}
		})
	}
}

// TestPcapNGRoundTrip reads a synthetic pcapng (SHB + IDB + packets,
// with an unknown block to skip) in both byte orders.
func TestPcapNGRoundTrip(t *testing.T) {
	for _, order := range []binary.ByteOrder{binary.BigEndian, binary.LittleEndian} {
		var f []byte
		f = append(f, ngSection(order)...)
		f = append(f, ngInterface(order, linktypeEthernet, ngTsresolOpt(order, 9))...) // nanosecond interface
		for _, r := range pcapTestRecs {
			f = append(f, ngPacket(order, 0, uint64(r.Time), r.Frame)...)
		}
		f = append(f, ngBlock(order, 0x0badcafe, []byte{1, 2, 3, 4})...) // unknown: skipped
		f = append(f, ngSimple(order, []byte("simple block frame"))...)

		recs, err := NewReader(bytes.NewReader(f)).ReadAll()
		if err != nil {
			t.Fatalf("%v: ReadAll: %v", order, err)
		}
		want := append(append([]Record{}, pcapTestRecs...), Record{Frame: []byte("simple block frame")})
		checkRecords(t, recs, want, true)
	}
}

// TestPcapNGTimestampResolutions exercises the if_tsresol conversions.
func TestPcapNGTimestampResolutions(t *testing.T) {
	order := binary.LittleEndian
	for _, tc := range []struct {
		name  string
		res   byte
		ticks uint64
		want  time.Duration
	}{
		{"default-micro", 6, 1_500_000, 1500 * time.Millisecond},
		{"millis", 3, 1500, 1500 * time.Millisecond},
		{"nanos", 9, 1_500_000_000, 1500 * time.Millisecond},
		{"picos-truncate", 12, 1_500_000_000_500, 1500 * time.Millisecond},
		{"pow2-10", 0x80 | 10, 1536, 1500 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var f []byte
			f = append(f, ngSection(order)...)
			f = append(f, ngInterface(order, linktypeEthernet, ngTsresolOpt(order, tc.res))...)
			f = append(f, ngPacket(order, 0, tc.ticks, []byte("f"))...)
			recs, err := NewReader(bytes.NewReader(f)).ReadAll()
			if err != nil {
				t.Fatalf("ReadAll: %v", err)
			}
			if len(recs) != 1 || recs[0].Time != tc.want {
				t.Fatalf("got %v, want %v", recs[0].Time, tc.want)
			}
		})
	}
}

// TestPcapReplayAutoDetect proves the replay entry points themselves
// auto-detect: the same frames arrive whether the container is SCAP,
// pcap, or pcapng, through both Replay and ReplayPartitioned.
func TestPcapReplayAutoDetect(t *testing.T) {
	order := binary.BigEndian
	var scap bytes.Buffer
	w := NewWriter(&scap)
	for _, r := range pcapTestRecs {
		if err := w.WriteFrame(r.Time, r.Frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var ng []byte
	ng = append(ng, ngSection(order)...)
	ng = append(ng, ngInterface(order, linktypeEthernet, ngTsresolOpt(order, 9))...)
	for _, r := range pcapTestRecs {
		ng = append(ng, ngPacket(order, 0, uint64(r.Time), r.Frame)...)
	}
	for _, tc := range []struct {
		name string
		file []byte
	}{
		{"scap", scap.Bytes()},
		{"pcap", pcapFile(order, true, linktypeEthernet, pcapTestRecs)},
		{"pcapng", ng},
	} {
		var frames [][]byte
		err := Replay(NewReader(bytes.NewReader(tc.file)), func(at time.Duration, frame []byte) {
			frames = append(frames, append([]byte(nil), frame...))
		})
		if err != nil {
			t.Fatalf("%s: Replay: %v", tc.name, err)
		}
		var n int
		count := func(time.Duration, []byte) { n++ }
		if err := ReplayPartitioned(NewReader(bytes.NewReader(tc.file)), count, count); err != nil {
			t.Fatalf("%s: ReplayPartitioned: %v", tc.name, err)
		}
		if len(frames) != len(pcapTestRecs) || n != len(pcapTestRecs) {
			t.Fatalf("%s: Replay delivered %d frames, ReplayPartitioned %d, want %d",
				tc.name, len(frames), n, len(pcapTestRecs))
		}
		for i := range frames {
			if !bytes.Equal(frames[i], pcapTestRecs[i].Frame) {
				t.Errorf("%s: frame %d mismatch", tc.name, i)
			}
		}
	}
}

// TestCaptureCorruptFiles is the corrupt-path table: every malformed
// input is rejected with an error naming what is wrong, and record-level
// corruption reports the record index and byte offset so the bad record
// can be found in a multi-gigabyte capture.
func TestCaptureCorruptFiles(t *testing.T) {
	be := binary.BigEndian
	scapOversize := func() []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteFrame(0, []byte("ok")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		f := buf.Bytes()
		// Second record claims MaxFrameLen+1 bytes.
		f = append(f, make([]byte, 8)...)
		f = append(f, u32(be, uint32(MaxFrameLen+1))...)
		return f
	}()
	pcapGood := pcapFile(be, false, linktypeEthernet, pcapTestRecs[:1])
	pcapOversize := append(append([]byte{}, pcapGood...),
		append(make([]byte, 8), append(u32(be, uint32(MaxFrameLen+1)), u32(be, 0)...)...)...)
	ngPrefix := append(ngSection(be), ngInterface(be, linktypeEthernet, nil)...)

	for _, tc := range []struct {
		name string
		file []byte
		want []string // substrings the error must contain
	}{
		{"empty", nil, []string{"read header"}},
		{"bad-magic", []byte("NOTAPCAP"), []string{"bad magic", "pcap"}},
		{"scap-bad-version", []byte{'S', 'C', 'A', 'P', 0, 99}, []string{"unsupported version 99"}},
		{"scap-oversize-record", scapOversize,
			[]string{"corrupt record length 65537", "record 1", "offset 20"}},
		{"scap-truncated-body", []byte{'S', 'C', 'A', 'P', 0, 1,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 9, 'x'}, []string{"read frame body"}},
		{"pcap-truncated-header", pcapFile(be, false, linktypeEthernet, nil)[:20], []string{"read pcap header"}},
		{"pcap-bad-version", func() []byte {
			f := append([]byte{}, pcapGood...)
			be.PutUint16(f[4:6], 7)
			return f
		}(), []string{"unsupported pcap version 7"}},
		{"pcap-bad-linktype", pcapFile(be, false, 101 /* raw IP */, nil),
			[]string{"linktype 101", "Ethernet"}},
		{"pcap-oversize-record", pcapOversize,
			[]string{"corrupt record length 65537", "record 1", "offset 51"}},
		{"pcap-truncated-body", pcapGood[:len(pcapGood)-3], []string{"read frame body"}},
		{"pcapng-bad-order-magic", func() []byte {
			f := append([]byte{}, ngSection(be)...)
			copy(f[8:12], []byte{1, 2, 3, 4})
			return f
		}(), []string{"byte-order magic"}},
		{"pcapng-bad-version", func() []byte {
			f := append([]byte{}, ngSection(be)...)
			be.PutUint16(f[12:14], 3)
			return f
		}(), []string{"unsupported pcapng version 3"}},
		{"pcapng-bad-linktype", append(ngSection(be), ngInterface(be, 113 /* Linux SLL */, nil)...),
			[]string{"linktype 113", "Ethernet"}},
		{"pcapng-packet-without-interface", append(ngSection(be), ngPacket(be, 0, 0, []byte("f"))...),
			[]string{"references interface 0 of 0"}},
		{"pcapng-simple-without-interface", append(ngSection(be), ngSimple(be, []byte("f"))...),
			[]string{"simple packet block before any interface"}},
		{"pcapng-trailer-mismatch", func() []byte {
			f := append([]byte{}, ngPrefix...)
			blk := ngBlock(be, 0x0badcafe, []byte{1, 2, 3, 4})
			be.PutUint32(blk[len(blk)-4:], 8) // corrupt trailing length
			return append(f, blk...)
		}(), []string{"trailer length 8 does not match"}},
		{"pcapng-block-too-short", func() []byte {
			f := append([]byte{}, ngPrefix...)
			f = append(f, u32(be, pcapngBlockEPB)...)
			f = append(f, u32(be, 8)...) // < minimum 12
			return f
		}(), []string{"corrupt pcapng block length 8"}},
		{"pcapng-packet-overruns-block", func() []byte {
			f := append([]byte{}, ngPrefix...)
			blk := ngPacket(be, 0, 0, []byte("frame"))
			be.PutUint32(blk[20:24], 500) // captured length beyond the block
			return append(f, blk...)
		}(), []string{"data overruns block"}},
		{"pcapng-oversize-record", func() []byte {
			f := append([]byte{}, ngPrefix...)
			blk := ngPacket(be, 0, 0, []byte("frame"))
			be.PutUint32(blk[20:24], uint32(MaxFrameLen+1))
			return append(f, blk...)
		}(), []string{"corrupt record length 65537", "record 0"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(bytes.NewReader(tc.file))
			var err error
			for err == nil {
				_, err = r.Next()
			}
			if err == io.EOF {
				t.Fatal("corrupt file read to clean EOF")
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("error %q does not mention %q", err, sub)
				}
			}
		})
	}
}
