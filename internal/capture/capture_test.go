package capture

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := [][]byte{[]byte("frame-one"), {}, bytes.Repeat([]byte{0xaa}, 1500)}
	for i, f := range frames {
		if err := w.WriteFrame(time.Duration(i)*time.Millisecond, f); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Count() != len(frames) {
		t.Errorf("Count() = %d, want %d", w.Count(), len(frames))
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != len(frames) {
		t.Fatalf("read %d records, want %d", len(recs), len(frames))
	}
	for i, rec := range recs {
		if rec.Time != time.Duration(i)*time.Millisecond {
			t.Errorf("record %d time = %v", i, rec.Time)
		}
		if !bytes.Equal(rec.Frame, frames[i]) {
			t.Errorf("record %d frame mismatch", i)
		}
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty capture", len(recs))
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTSCAP---")))
	if _, err := r.Next(); err == nil {
		t.Error("want error for bad magic")
	}
}

func TestUnsupportedVersion(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{'S', 'C', 'A', 'P', 0x00, 0x63}))
	if _, err := r.Next(); err == nil {
		t.Error("want error for version 99")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(0, []byte("abcdef")); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(cut))
	if _, err := r.Next(); err == nil {
		t.Error("want error for truncated body")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(0, make([]byte, MaxFrameLen+1)); err == nil {
		t.Error("want error for oversize frame")
	}
}

func TestEOFAfterLastRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteFrame(time.Second, []byte("x"))
	_ = w.Close()
	r := NewReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("second Next err = %v, want io.EOF", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ts uint32, frame []byte) bool {
		if len(frame) > MaxFrameLen {
			frame = frame[:MaxFrameLen]
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteFrame(time.Duration(ts), frame); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		rec, err := NewReader(&buf).Next()
		return err == nil && rec.Time == time.Duration(ts) && bytes.Equal(rec.Frame, frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
