package capture

import (
	"bytes"
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := [][]byte{[]byte("frame-one"), {}, bytes.Repeat([]byte{0xaa}, 1500)}
	for i, f := range frames {
		if err := w.WriteFrame(time.Duration(i)*time.Millisecond, f); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Count() != len(frames) {
		t.Errorf("Count() = %d, want %d", w.Count(), len(frames))
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != len(frames) {
		t.Fatalf("read %d records, want %d", len(recs), len(frames))
	}
	for i, rec := range recs {
		if rec.Time != time.Duration(i)*time.Millisecond {
			t.Errorf("record %d time = %v", i, rec.Time)
		}
		if !bytes.Equal(rec.Frame, frames[i]) {
			t.Errorf("record %d frame mismatch", i)
		}
	}
}

func TestEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty capture", len(recs))
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTSCAP---")))
	if _, err := r.Next(); err == nil {
		t.Error("want error for bad magic")
	}
}

func TestUnsupportedVersion(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{'S', 'C', 'A', 'P', 0x00, 0x63}))
	if _, err := r.Next(); err == nil {
		t.Error("want error for version 99")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(0, []byte("abcdef")); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(cut))
	if _, err := r.Next(); err == nil {
		t.Error("want error for truncated body")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(0, make([]byte, MaxFrameLen+1)); err == nil {
		t.Error("want error for oversize frame")
	}
}

func TestEOFAfterLastRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteFrame(time.Second, []byte("x"))
	_ = w.Close()
	r := NewReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("second Next err = %v, want io.EOF", err)
	}
}

// partitionedCapture writes n records whose bodies encode their index,
// with lengths that force the lane buffers to grow and shrink.
func partitionedCapture(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < n; i++ {
		frame := bytes.Repeat([]byte{byte(i)}, 1+(i*37)%300)
		if err := w.WriteFrame(time.Duration(i)*time.Millisecond, frame); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return &buf
}

// TestReplayPartitioned: consumer i of N must see exactly records
// i, i+N, i+2N, … in capture order, and because the lanes reuse
// buffers, the contents must be checked during the call (the aliasing
// contract ReplayPartitioned promises to uphold per lane).
func TestReplayPartitioned(t *testing.T) {
	const n = 107
	for _, lanes := range []int{1, 2, 3, 4} {
		buf := partitionedCapture(t, n)
		type seen struct {
			at  time.Duration
			idx byte
			len int
		}
		got := make([][]seen, lanes)
		fns := make([]FrameFunc, lanes)
		for i := range fns {
			i := i
			fns[i] = func(at time.Duration, frame []byte) {
				s := seen{at: at, len: len(frame)}
				if len(frame) > 0 {
					s.idx = frame[0]
					for _, b := range frame {
						if b != frame[0] {
							t.Errorf("lanes=%d lane %d: frame bytes are not uniform — buffer reused too early", lanes, i)
							break
						}
					}
				}
				got[i] = append(got[i], s)
			}
		}
		if err := ReplayPartitioned(NewReader(buf), fns...); err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		total := 0
		for lane := 0; lane < lanes; lane++ {
			for j, s := range got[lane] {
				rec := lane + j*lanes
				if s.at != time.Duration(rec)*time.Millisecond || int(s.idx) != rec%256 || s.len != 1+(rec*37)%300 {
					t.Fatalf("lanes=%d lane %d record %d: got (at=%v idx=%d len=%d), want capture record %d",
						lanes, lane, j, s.at, s.idx, s.len, rec)
				}
			}
			total += len(got[lane])
		}
		if total != n {
			t.Errorf("lanes=%d: %d records delivered, want %d", lanes, total, n)
		}
	}
}

// TestReplayPartitionedErrors: zero consumers is an error, and a
// corrupt record surfaces the read error after draining the lanes.
func TestReplayPartitionedErrors(t *testing.T) {
	if err := ReplayPartitioned(NewReader(new(bytes.Buffer))); err == nil {
		t.Error("zero consumers accepted")
	}
	buf := partitionedCapture(t, 10)
	cut := bytes.NewBuffer(buf.Bytes()[:buf.Len()-3])
	var calls atomic.Int64
	fn := func(time.Duration, []byte) { calls.Add(1) }
	if err := ReplayPartitioned(NewReader(cut), fn, fn); err == nil {
		t.Error("truncated capture replayed without error")
	}
	if calls.Load() != 9 {
		t.Errorf("%d whole records delivered before the truncated one, want 9", calls.Load())
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ts uint32, frame []byte) bool {
		if len(frame) > MaxFrameLen {
			frame = frame[:MaxFrameLen]
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteFrame(time.Duration(ts), frame); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		rec, err := NewReader(&buf).Next()
		return err == nil && rec.Time == time.Duration(ts) && bytes.Equal(rec.Frame, frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
