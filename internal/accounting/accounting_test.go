package accounting

import (
	"net/netip"
	"testing"
	"time"

	"scidive/internal/netsim"
)

func TestTxnRoundTrip(t *testing.T) {
	start := Txn{
		Kind: TxnStart, CallID: "abc@x", From: "alice@10.0.0.10",
		To: "bob@10.0.0.10", FromIP: netip.MustParseAddr("10.0.0.1"),
	}
	got, err := ParseTxn(start.Marshal())
	if err != nil {
		t.Fatalf("ParseTxn(START): %v", err)
	}
	if got != start {
		t.Errorf("got %+v, want %+v", got, start)
	}
	stop := Txn{Kind: TxnStop, CallID: "abc@x"}
	got, err = ParseTxn(stop.Marshal())
	if err != nil {
		t.Fatalf("ParseTxn(STOP): %v", err)
	}
	if got.Kind != TxnStop || got.CallID != "abc@x" {
		t.Errorf("got %+v", got)
	}
}

func TestParseTxnErrors(t *testing.T) {
	for _, bad := range []string{
		"", "NOPE a b c", "START only three fields",
		"START id from to notanip", "STOP", "STOP a b",
	} {
		if _, err := ParseTxn([]byte(bad)); err == nil {
			t.Errorf("ParseTxn(%q): want error", bad)
		}
	}
}

func TestServiceCDRLifecycle(t *testing.T) {
	sim := netsim.NewSimulator(1)
	n := netsim.NewNetwork(sim)
	acctHost := n.MustAddHost("acct", netip.MustParseAddr("10.0.0.5"))
	proxyHost := n.MustAddHost("proxy", netip.MustParseAddr("10.0.0.10"))
	svc, err := NewService(acctHost, 0)
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	cli := NewClient(proxyHost, netip.AddrPortFrom(acctHost.IP(), DefaultPort), 7010)

	callerIP := netip.MustParseAddr("10.0.0.1")
	sim.Schedule(0, func() {
		_ = cli.Report(Txn{Kind: TxnStart, CallID: "c1", From: "a@d", To: "b@d", FromIP: callerIP})
	})
	sim.Schedule(30*time.Second, func() {
		_ = cli.Report(Txn{Kind: TxnStop, CallID: "c1"})
	})
	sim.Run()

	recs := svc.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	r := recs[0]
	if !r.Stopped || r.From != "a@d" || r.To != "b@d" || r.FromIP != callerIP {
		t.Errorf("record = %+v", r)
	}
	// Link delay 2×0.5ms on both transactions cancels in the difference.
	if d := r.Duration(); d != 30*time.Second {
		t.Errorf("Duration = %v, want 30s", d)
	}
	if svc.RecordFor("c1") != r {
		t.Error("RecordFor mismatch")
	}
	if svc.RecordFor("nope") != nil {
		t.Error("RecordFor(nonexistent) != nil")
	}
}

func TestServiceIdempotentAndMalformed(t *testing.T) {
	sim := netsim.NewSimulator(1)
	n := netsim.NewNetwork(sim)
	acctHost := n.MustAddHost("acct", netip.MustParseAddr("10.0.0.5"))
	other := n.MustAddHost("x", netip.MustParseAddr("10.0.0.9"))
	svc, err := NewService(acctHost, 0)
	if err != nil {
		t.Fatal(err)
	}
	ip := netip.MustParseAddr("10.0.0.1")
	svc.Apply(Txn{Kind: TxnStart, CallID: "c", From: "a", To: "b", FromIP: ip}, 0)
	svc.Apply(Txn{Kind: TxnStart, CallID: "c", From: "a", To: "b", FromIP: ip}, time.Second)
	svc.Apply(Txn{Kind: TxnStop, CallID: "c"}, 2*time.Second)
	svc.Apply(Txn{Kind: TxnStop, CallID: "c"}, 9*time.Second) // ignored
	svc.Apply(Txn{Kind: TxnStop, CallID: "ghost"}, time.Second)
	if got := len(svc.Records()); got != 1 {
		t.Fatalf("records = %d", got)
	}
	if d := svc.Records()[0].Duration(); d != 2*time.Second {
		t.Errorf("Duration = %v, want 2s", d)
	}
	// Undecodable payload increments Malformed.
	_ = other.SendUDP(1, netip.AddrPortFrom(acctHost.IP(), DefaultPort), []byte("GARBAGE\n"))
	sim.Run()
	if svc.Malformed != 1 {
		t.Errorf("Malformed = %d", svc.Malformed)
	}
}

func TestUnstoppedRecordDuration(t *testing.T) {
	r := &Record{Start: 5 * time.Second}
	if r.Duration() != 0 {
		t.Error("in-progress record should have zero duration")
	}
}

func TestTxnKindString(t *testing.T) {
	if TxnStart.String() != "START" || TxnStop.String() != "STOP" || TxnKind(0).String() != "UNKNOWN" {
		t.Error("TxnKind.String mismatch")
	}
}
