// Package accounting implements the billing substrate of the SCIDIVE
// paper's Section 3.2 scenario: "VoIP systems typically have application
// level software for billing purposes". The SIP proxy reports call start
// and stop transactions to an accounting service over a line-oriented UDP
// protocol; the service maintains call detail records (CDRs).
//
// The wire protocol is deliberately plain text so the IDS Distiller can
// decode it into accounting Footprints for cross-protocol correlation:
//
//	START <call-id> <from-aor> <to-aor> <from-ip>
//	STOP  <call-id>
package accounting

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"scidive/internal/netsim"
)

// DefaultPort is the UDP port the accounting service listens on.
const DefaultPort = 7009

// TxnKind distinguishes accounting transactions.
type TxnKind int

// Transaction kinds.
const (
	TxnStart TxnKind = iota + 1
	TxnStop
)

// String returns the wire keyword.
func (k TxnKind) String() string {
	switch k {
	case TxnStart:
		return "START"
	case TxnStop:
		return "STOP"
	default:
		return "UNKNOWN"
	}
}

// Txn is one accounting transaction.
type Txn struct {
	Kind   TxnKind
	CallID string
	From   string // caller AOR, e.g. alice@10.0.0.10
	To     string // callee AOR
	FromIP netip.Addr
}

// Marshal serializes the transaction in wire form.
func (t Txn) Marshal() []byte {
	switch t.Kind {
	case TxnStart:
		return []byte(fmt.Sprintf("START %s %s %s %s\n", t.CallID, t.From, t.To, t.FromIP))
	case TxnStop:
		return []byte(fmt.Sprintf("STOP %s\n", t.CallID))
	default:
		return nil
	}
}

// ParseTxn parses one wire-format transaction line.
func ParseTxn(line []byte) (Txn, error) {
	f := strings.Fields(strings.TrimSpace(string(line)))
	if len(f) == 0 {
		return Txn{}, fmt.Errorf("accounting: empty transaction")
	}
	switch f[0] {
	case "START":
		if len(f) != 5 {
			return Txn{}, fmt.Errorf("accounting: START wants 5 fields, got %d", len(f))
		}
		ip, err := netip.ParseAddr(f[4])
		if err != nil {
			return Txn{}, fmt.Errorf("accounting: bad from-ip %q", f[4])
		}
		return Txn{Kind: TxnStart, CallID: f[1], From: f[2], To: f[3], FromIP: ip}, nil
	case "STOP":
		if len(f) != 2 {
			return Txn{}, fmt.Errorf("accounting: STOP wants 2 fields, got %d", len(f))
		}
		return Txn{Kind: TxnStop, CallID: f[1]}, nil
	default:
		return Txn{}, fmt.Errorf("accounting: unknown transaction %q", f[0])
	}
}

// Record is one call detail record.
type Record struct {
	CallID  string
	From    string
	To      string
	FromIP  netip.Addr
	Start   time.Duration
	Stop    time.Duration
	Stopped bool
}

// Duration returns the billed call duration (zero while in progress).
func (r *Record) Duration() time.Duration {
	if !r.Stopped {
		return 0
	}
	return r.Stop - r.Start
}

// Service is the accounting/billing server.
type Service struct {
	host    *netsim.Host
	records []*Record
	byCall  map[string]*Record

	// Malformed counts undecodable transactions received.
	Malformed int
}

// NewService binds the accounting service to port on host.
func NewService(host *netsim.Host, port uint16) (*Service, error) {
	if port == 0 {
		port = DefaultPort
	}
	s := &Service{host: host, byCall: make(map[string]*Record)}
	if err := host.BindUDP(port, s.handle); err != nil {
		return nil, fmt.Errorf("accounting: %w", err)
	}
	return s, nil
}

func (s *Service) handle(_ netip.AddrPort, payload []byte) {
	for _, line := range strings.Split(string(payload), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		txn, err := ParseTxn([]byte(line))
		if err != nil {
			s.Malformed++
			continue
		}
		s.Apply(txn, s.host.Sim().Now())
	}
}

// Apply folds one transaction into the CDR table at the given time.
func (s *Service) Apply(txn Txn, now time.Duration) {
	switch txn.Kind {
	case TxnStart:
		if _, dup := s.byCall[txn.CallID]; dup {
			return // duplicate START is idempotent
		}
		r := &Record{CallID: txn.CallID, From: txn.From, To: txn.To, FromIP: txn.FromIP, Start: now}
		s.byCall[txn.CallID] = r
		s.records = append(s.records, r)
	case TxnStop:
		if r, ok := s.byCall[txn.CallID]; ok && !r.Stopped {
			r.Stop = now
			r.Stopped = true
		}
	}
}

// Records returns all CDRs in arrival order.
func (s *Service) Records() []*Record {
	out := make([]*Record, len(s.records))
	copy(out, s.records)
	return out
}

// RecordFor returns the CDR for a call, or nil.
func (s *Service) RecordFor(callID string) *Record { return s.byCall[callID] }

// Client reports transactions to the service (used by the SIP proxy).
type Client struct {
	host *netsim.Host
	dst  netip.AddrPort
	port uint16 // local source port
}

// NewClient returns a client on host sending to dst.
func NewClient(host *netsim.Host, dst netip.AddrPort, localPort uint16) *Client {
	return &Client{host: host, dst: dst, port: localPort}
}

// Report sends one transaction. Errors are returned for unroutable
// destinations.
func (c *Client) Report(txn Txn) error {
	return c.host.SendUDP(c.port, c.dst, txn.Marshal())
}
