module scidive

go 1.22
