package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"scidive/internal/capture"
	"scidive/internal/core"
	"scidive/internal/experiments"
)

// Sharded-engine scaling check: replay one mixed-call workload through
// the serial engine and through ShardedEngine over a grid of ingest
// widths (1, 2, 4 parallel ingest routers) × worker shard counts (1, 2,
// 8), verify every run raises exactly the expected alerts, and fail
// (non-zero exit) if the best 8-shard configuration falls below the
// scaling-aware speedup gate. BENCH_sharded.json in the repo root
// records the numbers; regenerate with `benchreport -exp sharded -json
// BENCH_sharded.json` after hot-path changes.

const (
	shardedCalls  = 256
	shardedRounds = 24
	// fullShardedSpeedup is the 8-shard regression gate on a host with at
	// least 8 CPUs. requiredSpeedup scales it by the CPUs actually
	// available (floor 1.0x, i.e. "no slower than serial"), so the gate
	// measures the machine it runs on instead of demanding an 8-way
	// speedup from a 1-core CI box.
	fullShardedSpeedup = 5.0
	// shardedReps: each configuration is timed this many times and the
	// best run is kept, shedding scheduler noise.
	shardedReps = 3
)

var (
	shardedIngestWidths = []int{1, 2, 4}
	shardedShardCounts  = []int{1, 2, 8}
)

// requiredSpeedup is the gate for the best 8-shard configuration versus
// the serial baseline, scaled to the host's parallelism.
func requiredSpeedup(cpus int) float64 {
	if cpus >= 8 {
		return fullShardedSpeedup
	}
	r := fullShardedSpeedup * float64(cpus) / 8
	if r < 1.0 {
		r = 1.0
	}
	return r
}

// ShardedReport is the JSON shape of BENCH_sharded.json. ShardedFPS is
// keyed "IxS" — I parallel ingest routers feeding S worker shards.
type ShardedReport struct {
	Calls           int                `json:"calls"`
	Rounds          int                `json:"rtp_rounds"`
	Frames          int                `json:"frames"`
	Alerts          int                `json:"alerts_per_run"`
	CPUs            int                `json:"cpus"`
	SerialFPS       float64            `json:"serial_fps"`
	ShardedFPS      map[string]float64 `json:"sharded_fps"`
	Speedup8        float64            `json:"speedup_8_shards"`
	RequiredSpeedup float64            `json:"required_speedup"`
}

func checkShardedAlerts(alerts []core.Alert) error {
	if len(alerts) != shardedCalls {
		return fmt.Errorf("got %d alerts, want %d", len(alerts), shardedCalls)
	}
	for _, a := range alerts {
		if a.Rule != core.RuleByeAttack {
			return fmt.Errorf("false alarm: %v", a)
		}
	}
	return nil
}

// bestFPS times fn over the workload shardedReps times and returns the
// highest frames-per-second observed. fn must return the run's alerts.
func bestFPS(recs []capture.Record, fn func() ([]core.Alert, error)) (float64, error) {
	var best float64
	for r := 0; r < shardedReps; r++ {
		start := time.Now()
		alerts, err := fn()
		elapsed := time.Since(start)
		if err != nil {
			return 0, err
		}
		if err := checkShardedAlerts(alerts); err != nil {
			return 0, err
		}
		if fps := float64(len(recs)) / elapsed.Seconds(); fps > best {
			best = fps
		}
	}
	return best, nil
}

func gridKey(ingest, shards int) string { return fmt.Sprintf("%dx%d", ingest, shards) }

func measureSharded() (ShardedReport, error) {
	recs := experiments.MixedCallWorkload(shardedCalls, shardedRounds, 1)
	rep := ShardedReport{
		Calls: shardedCalls, Rounds: shardedRounds, Frames: len(recs),
		Alerts: shardedCalls, CPUs: runtime.NumCPU(), ShardedFPS: map[string]float64{},
	}
	var err error
	rep.SerialFPS, err = bestFPS(recs, func() ([]core.Alert, error) {
		eng := core.NewEngine(core.Config{})
		for _, r := range recs {
			eng.HandleFrame(r.Time, r.Frame)
		}
		return eng.Alerts(), nil
	})
	if err != nil {
		return rep, fmt.Errorf("serial: %w", err)
	}
	for _, ingest := range shardedIngestWidths {
		for _, shards := range shardedShardCounts {
			ingest, shards := ingest, shards
			fps, err := bestFPS(recs, func() ([]core.Alert, error) {
				eng := core.NewShardedEngine(core.Config{IngestRouters: ingest}, shards)
				for _, r := range recs {
					eng.HandleFrame(r.Time, r.Frame)
				}
				eng.Close()
				return eng.Alerts(), nil
			})
			if err != nil {
				return rep, fmt.Errorf("ingest-%d-sharded-%d: %w", ingest, shards, err)
			}
			rep.ShardedFPS[gridKey(ingest, shards)] = fps
		}
	}
	for _, ingest := range shardedIngestWidths {
		if s := rep.ShardedFPS[gridKey(ingest, 8)] / rep.SerialFPS; s > rep.Speedup8 {
			rep.Speedup8 = s
		}
	}
	rep.RequiredSpeedup = requiredSpeedup(rep.CPUs)
	return rep, nil
}

func runSharded(out io.Writer, jsonPath string) error {
	rep, err := measureSharded()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Sharded engine scaling (%d concurrent calls, %d frames, %d bye-attacks expected, %d CPUs):\n",
		rep.Calls, rep.Frames, rep.Alerts, rep.CPUs)
	fmt.Fprintf(out, "  serial               %10.0f frames/sec\n", rep.SerialFPS)
	for _, ingest := range shardedIngestWidths {
		for _, shards := range shardedShardCounts {
			key := gridKey(ingest, shards)
			fmt.Fprintf(out, "  ingest=%d shards=%d    %10.0f frames/sec (%.2fx)\n",
				ingest, shards, rep.ShardedFPS[key], rep.ShardedFPS[key]/rep.SerialFPS)
		}
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n", jsonPath)
	}
	if rep.Speedup8 < rep.RequiredSpeedup {
		return fmt.Errorf("sharded speedup regression: best 8-shard configuration ran %.2fx serial, gate is %.2fx (%.1fx scaled to %d CPUs)",
			rep.Speedup8, rep.RequiredSpeedup, fullShardedSpeedup, rep.CPUs)
	}
	return nil
}
