package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"scidive/internal/capture"
	"scidive/internal/core"
	"scidive/internal/experiments"
)

// Sharded-engine scaling check: replay one mixed-call workload through the
// serial engine and through ShardedEngine at 1, 2 and 8 shards, verify
// every run raises exactly the expected alerts, and fail (non-zero exit)
// if 8 shards deliver less than minShardedSpeedup x the serial
// frames-per-second. BENCH_sharded.json in the repo root records the
// numbers from the first run of this check.

const (
	shardedCalls  = 256
	shardedRounds = 24
	// minShardedSpeedup is the regression gate for BenchmarkSharded_8
	// versus the serial baseline on the same workload.
	minShardedSpeedup = 2.0
	// shardedReps: each configuration is timed this many times and the
	// best run is kept, shedding scheduler noise.
	shardedReps = 3
)

// ShardedReport is the JSON shape of BENCH_sharded.json.
type ShardedReport struct {
	Calls      int                `json:"calls"`
	Rounds     int                `json:"rtp_rounds"`
	Frames     int                `json:"frames"`
	Alerts     int                `json:"alerts_per_run"`
	SerialFPS  float64            `json:"serial_fps"`
	ShardedFPS map[string]float64 `json:"sharded_fps"`
	Speedup8   float64            `json:"speedup_8_shards"`
}

func checkShardedAlerts(alerts []core.Alert) error {
	if len(alerts) != shardedCalls {
		return fmt.Errorf("got %d alerts, want %d", len(alerts), shardedCalls)
	}
	for _, a := range alerts {
		if a.Rule != core.RuleByeAttack {
			return fmt.Errorf("false alarm: %v", a)
		}
	}
	return nil
}

// bestFPS times fn over the workload shardedReps times and returns the
// highest frames-per-second observed. fn must return the run's alerts.
func bestFPS(recs []capture.Record, fn func() ([]core.Alert, error)) (float64, error) {
	var best float64
	for r := 0; r < shardedReps; r++ {
		start := time.Now()
		alerts, err := fn()
		elapsed := time.Since(start)
		if err != nil {
			return 0, err
		}
		if err := checkShardedAlerts(alerts); err != nil {
			return 0, err
		}
		if fps := float64(len(recs)) / elapsed.Seconds(); fps > best {
			best = fps
		}
	}
	return best, nil
}

func measureSharded() (ShardedReport, error) {
	recs := experiments.MixedCallWorkload(shardedCalls, shardedRounds, 1)
	rep := ShardedReport{
		Calls: shardedCalls, Rounds: shardedRounds, Frames: len(recs),
		Alerts: shardedCalls, ShardedFPS: map[string]float64{},
	}
	var err error
	rep.SerialFPS, err = bestFPS(recs, func() ([]core.Alert, error) {
		eng := core.NewEngine(core.Config{})
		for _, r := range recs {
			eng.HandleFrame(r.Time, r.Frame)
		}
		return eng.Alerts(), nil
	})
	if err != nil {
		return rep, fmt.Errorf("serial: %w", err)
	}
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		fps, err := bestFPS(recs, func() ([]core.Alert, error) {
			eng := core.NewShardedEngine(core.Config{}, shards)
			for _, r := range recs {
				eng.HandleFrame(r.Time, r.Frame)
			}
			eng.Close()
			return eng.Alerts(), nil
		})
		if err != nil {
			return rep, fmt.Errorf("sharded-%d: %w", shards, err)
		}
		rep.ShardedFPS[fmt.Sprint(shards)] = fps
	}
	rep.Speedup8 = rep.ShardedFPS["8"] / rep.SerialFPS
	return rep, nil
}

func runSharded(out io.Writer, jsonPath string) error {
	rep, err := measureSharded()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Sharded engine scaling (%d concurrent calls, %d frames, %d bye-attacks expected):\n",
		rep.Calls, rep.Frames, rep.Alerts)
	fmt.Fprintf(out, "  serial      %10.0f frames/sec\n", rep.SerialFPS)
	for _, s := range []string{"1", "2", "8"} {
		fmt.Fprintf(out, "  %2s shard(s) %10.0f frames/sec (%.2fx)\n", s, rep.ShardedFPS[s], rep.ShardedFPS[s]/rep.SerialFPS)
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n", jsonPath)
	}
	if rep.Speedup8 < minShardedSpeedup {
		return fmt.Errorf("sharded speedup regression: 8 shards ran %.2fx serial, gate is %.1fx",
			rep.Speedup8, minShardedSpeedup)
	}
	return nil
}
