// Command benchreport regenerates every table and figure of the SCIDIVE
// paper's evaluation from the reproduction, printing them as text.
//
// Usage:
//
//	benchreport               # everything
//	benchreport -exp table1   # one artifact
//
// Experiments: table1, fig1, fig5, fig6, fig7, fig8, delay, pm, pf,
// billing, stateful, sharded, restartloss, hotpath, evasion, coop.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scidive/internal/core"
	"scidive/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

var order = []string{"table1", "fig1", "fig5", "fig6", "fig7", "fig8", "delay", "wire", "pm", "pf", "billing", "stateful", "sharded", "restartloss", "hotpath", "evasion", "coop"}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to regenerate (all, table1, fig1, fig5..fig8, delay, pm, pf, billing, stateful, sharded, restartloss, hotpath, evasion, coop)")
	seed := fs.Int64("seed", 1, "simulation random seed")
	trials := fs.Int("trials", 100000, "Monte Carlo trials for the Section 4.3 analysis")
	jsonPath := fs.String("json", "", "for -exp sharded/hotpath: also write the measured numbers to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exp != "all" {
		return runOne(*exp, *seed, *trials, *jsonPath, out)
	}
	for _, name := range order {
		if err := runOne(name, *seed, *trials, *jsonPath, out); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(out)
	}
	return nil
}

func runOne(name string, seed int64, trials int, jsonPath string, out io.Writer) error {
	switch name {
	case "table1":
		rows, err := experiments.Table1(seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatTable1(rows))
	case "fig1":
		ladder, err := experiments.Fig1Ladder(seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, ladder)
	case "fig5":
		return printOutcome(out, "Figure 5 (BYE attack)", func() (experiments.Outcome, error) {
			return experiments.RunByeAttack(seed, core.Config{})
		})
	case "fig6":
		return printOutcome(out, "Figure 6 (Fake IM)", func() (experiments.Outcome, error) {
			return experiments.RunFakeIM(seed)
		})
	case "fig7":
		return printOutcome(out, "Figure 7 (Call Hijacking)", func() (experiments.Outcome, error) {
			return experiments.RunCallHijack(seed)
		})
	case "fig8":
		return printOutcome(out, "Figure 8 (RTP attack, X-Lite victim)", func() (experiments.Outcome, error) {
			return experiments.RunRTPAttack(seed, true)
		})
	case "delay":
		fmt.Fprint(out, experiments.FormatDelaySweep(experiments.DelaySweep(seed, trials)))
	case "wire":
		res, err := experiments.MeasureWireByeDelay(30, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Section 4.3.1 wire validation: BYE-attack detection delay measured\n"+
			"on the simulated LAN over 30 randomized-phase runs (model: ≈10ms):\n%s\n", res)
	case "pm":
		fmt.Fprint(out, experiments.FormatPmSweep(experiments.PmSweep(seed, trials)))
	case "pf":
		fmt.Fprint(out, experiments.FormatPfSweep(experiments.PfSweep(seed, trials)))
	case "billing":
		return printOutcome(out, "Section 3.2 (Billing fraud)", func() (experiments.Outcome, error) {
			return experiments.RunBillingFraud(seed)
		})
	case "sharded":
		return runSharded(out, jsonPath)
	case "hotpath":
		return runHotpath(out, jsonPath)
	case "restartloss":
		res, err := experiments.RunRestartLoss(seed, 8)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatRestartLoss(res))
	case "stateful":
		cmp, err := experiments.RunStatefulComparison(seed)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.FormatStatefulComparison(cmp))
	case "evasion":
		return runEvasion(out, seed)
	case "coop":
		return runCoop(out, seed)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

func printOutcome(out io.Writer, title string, run func() (experiments.Outcome, error)) error {
	o, err := run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n%s\n", title, o)
	for _, a := range o.Alerts {
		fmt.Fprintln(out, " ", a)
	}
	return nil
}
