package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"testing"
	"time"

	"scidive/internal/core"
	"scidive/internal/packet"
	"scidive/internal/rtp"
)

// Hot-path allocation check: measure the steady-state per-frame cost of
// the distiller and the full serial pipeline on a media frame, print a
// before/after table against the recorded pre-refactor baselines, and
// fail (non-zero exit) when the hot path regresses: time above 2x its
// baseline, bytes above half the baseline (the refactor's contracted
// >=2x reduction), or any allocation where the pooled pipeline promises
// zero. BENCH_hotpath.json in the repo root records the numbers from the
// first run of this check.

// hotpathBaselines are the pre-refactor numbers (interface-typed
// footprints, per-frame boxing, copy-shift trail eviction), recorded
// before the zero-allocation rework for the before/after columns and
// the regression gates.
var hotpathProbes = []hotpathProbe{
	{
		Name:   "distill_rtp",
		Desc:   "Distiller only: frame -> FrameView",
		Before: HotpathMetrics{NsPerOp: 297.2, BytesPerOp: 320, AllocsPerOp: 2},
		// The view path decodes in place: no footprint box, no payload
		// retention.
		MaxAllocs: 0,
		run: func(b *testing.B) {
			frame := hotpathRTPFrame()
			d := core.NewDistiller()
			var v core.FrameView
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !d.DistillView(time.Duration(i)*20*time.Millisecond, frame, &v) {
					b.Fatal("no footprint")
				}
			}
		},
	},
	{
		Name:   "engine_rtp",
		Desc:   "Full serial pipeline per media frame",
		Before: HotpathMetrics{NsPerOp: 4870, BytesPerOp: 410, AllocsPerOp: 10},
		// Pooled decode, value-typed trails and caller-owned event scratch:
		// a steady-state media frame must not touch the heap.
		MaxAllocs: 0,
		run: func(b *testing.B) {
			frame := hotpathRTPFrame()
			eng := core.NewEngine(core.Config{})
			// Saturate the 4096-entry trail ring so appends overwrite in
			// place, as in any long-lived media stream.
			for i := 0; i < 5000; i++ {
				eng.HandleFrame(time.Duration(i)*20*time.Millisecond, frame)
			}
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.HandleFrame(time.Duration(5000+i)*20*time.Millisecond, frame)
			}
		},
	},
}

type hotpathProbe struct {
	Name      string
	Desc      string
	Before    HotpathMetrics
	MaxAllocs float64
	run       func(b *testing.B)
}

// HotpathMetrics is one measurement in BENCH_hotpath.json.
type HotpathMetrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// HotpathRow pairs the recorded baseline with the fresh measurement.
type HotpathRow struct {
	Probe  string         `json:"probe"`
	Desc   string         `json:"desc"`
	Before HotpathMetrics `json:"before"`
	After  HotpathMetrics `json:"after"`
}

// HotpathReport is the JSON shape of BENCH_hotpath.json.
type HotpathReport struct {
	Rows []HotpathRow `json:"rows"`
}

// hotpathRTPFrame builds the representative media frame both probes
// replay.
func hotpathRTPFrame() []byte {
	pkt := rtp.Packet{
		Header:  rtp.Header{PayloadType: rtp.PayloadTypePCMU, Seq: 100, Timestamp: 16000, SSRC: 7},
		Payload: make([]byte, 160),
	}
	buf, err := pkt.Marshal()
	if err != nil {
		panic(err)
	}
	frames, err := packet.BuildUDPFrames(packet.UDPFrameSpec{
		SrcMAC: packet.MAC{2, 0, 0, 0, 0, 1}, DstMAC: packet.MAC{2, 0, 0, 0, 0, 2},
		SrcIP:   netip.MustParseAddr("10.0.0.1"),
		DstIP:   netip.MustParseAddr("10.0.0.2"),
		SrcPort: 40000, DstPort: 40000, IPID: 1, Payload: buf,
	}, 0)
	if err != nil {
		panic(err)
	}
	return frames[0]
}

func measureHotpath() HotpathReport {
	var rep HotpathReport
	for _, p := range hotpathProbes {
		res := testing.Benchmark(p.run)
		rep.Rows = append(rep.Rows, HotpathRow{
			Probe:  p.Name,
			Desc:   p.Desc,
			Before: p.Before,
			After: HotpathMetrics{
				NsPerOp:     float64(res.NsPerOp()),
				BytesPerOp:  float64(res.AllocedBytesPerOp()),
				AllocsPerOp: float64(res.AllocsPerOp()),
			},
		})
	}
	return rep
}

func runHotpath(out io.Writer, jsonPath string) error {
	rep := measureHotpath()
	fmt.Fprintf(out, "Hot-path memory profile (steady-state media frame, before -> after):\n")
	for _, row := range rep.Rows {
		fmt.Fprintf(out, "  %-12s %s\n", row.Probe, row.Desc)
		fmt.Fprintf(out, "    %8.0f -> %-6.0f ns/op   %6.0f -> %-4.0f B/op   %4.0f -> %-3.0f allocs/op\n",
			row.Before.NsPerOp, row.After.NsPerOp,
			row.Before.BytesPerOp, row.After.BytesPerOp,
			row.Before.AllocsPerOp, row.After.AllocsPerOp)
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n", jsonPath)
	}
	// Regression gates. Time is machine-dependent, so it only guards
	// against gross regressions (the pre-refactor pipeline was 15x
	// slower per engine frame; 2x headroom absorbs machine variance
	// without letting the O(n) trail shift back in). Bytes and
	// allocations are deterministic and held tight.
	for i, row := range rep.Rows {
		switch {
		case row.After.NsPerOp > 2*row.Before.NsPerOp:
			return fmt.Errorf("hotpath %s: %.0f ns/op exceeds 2x the %.0f ns/op baseline",
				row.Probe, row.After.NsPerOp, row.Before.NsPerOp)
		case row.After.BytesPerOp > row.Before.BytesPerOp/2:
			return fmt.Errorf("hotpath %s: %.0f B/op lost the refactor's >=2x reduction from %.0f B/op",
				row.Probe, row.After.BytesPerOp, row.Before.BytesPerOp)
		case row.After.AllocsPerOp > hotpathProbes[i].MaxAllocs:
			return fmt.Errorf("hotpath %s: %.0f allocs/op, want <= %.0f",
				row.Probe, row.After.AllocsPerOp, hotpathProbes[i].MaxAllocs)
		}
	}
	return nil
}
