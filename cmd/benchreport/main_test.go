package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	tests := []struct {
		exp  string
		want string
	}{
		{"table1", "Table 1"},
		{"fig1", "INVITE"},
		{"fig5", "bye-attack"},
		{"fig6", "fake-im"},
		{"fig7", "call-hijack"},
		{"fig8", "rtp-attack"},
		{"delay", "E[D]"},
		{"wire", "detected=30"},
		{"pm", "Pm"},
		{"pf", "Pf"},
		{"billing", "billing-fraud"},
		{"stateful", "false alarms"},
		{"sharded", "frames/sec"},
		{"hotpath", "allocs/op"},
		{"evasion", "mismatched="},
	}
	for _, tt := range tests {
		t.Run(tt.exp, func(t *testing.T) {
			var buf strings.Builder
			if err := run([]string{"-exp", tt.exp, "-trials", "2000"}, &buf); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(buf.String(), tt.want) {
				t.Errorf("output missing %q:\n%s", tt.want, buf.String())
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-trials", "2000"}, &buf); err != nil {
		t.Fatalf("run all: %v", err)
	}
	for _, want := range []string{"Table 1", "Figure 1", "Pm", "Pf", "billing-fraud"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("combined report missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-exp", "nope"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}
