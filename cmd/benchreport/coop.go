package main

import (
	"fmt"
	"io"

	"scidive/internal/experiments"
)

// coopAttacks are the split-vantage attack families: each is constructed
// so every single probe's evidence is individually unremarkable.
var coopAttacks = []struct {
	name string
	run  func(seed int64) (experiments.CoopOutcome, error)
}{
	{"bye-split", func(s int64) (experiments.CoopOutcome, error) { return experiments.RunCoopByeSplit(s) }},
	{"reg-hijack", func(s int64) (experiments.CoopOutcome, error) { return experiments.RunCoopRegHijack(s) }},
	{"fakeim-split", func(s int64) (experiments.CoopOutcome, error) { return experiments.RunCoopFakeIMSplit(s) }},
}

const coopSeeds = 5

// runCoop replays each split-vantage attack over several seeds and
// tabulates single-probe detections against the combined aggregator's.
// The claim under test: the solo column stays 0/N while the combined
// column reaches N/N — the attacks are invisible from any one vantage
// and certain from the merged stream.
func runCoop(out io.Writer, seed int64) error {
	fmt.Fprintln(out, "Cross-point detection (solo probes vs combined aggregator):")
	fmt.Fprintf(out, "  %-14s %12s %12s\n", "attack", "solo", "combined")
	for _, atk := range coopAttacks {
		solo, combined := 0, 0
		for s := int64(0); s < coopSeeds; s++ {
			o, err := atk.run(seed + s)
			if err != nil {
				return fmt.Errorf("%s seed %d: %w", atk.name, seed+s, err)
			}
			if o.SoloDetected {
				solo++
			}
			if o.Detected {
				combined++
			}
		}
		fmt.Fprintf(out, "  %-14s %8d/%-3d %8d/%-3d\n", atk.name, solo, coopSeeds, combined, coopSeeds)
	}
	o, err := experiments.RunCoopBenign(seed)
	if err != nil {
		return fmt.Errorf("benign: %w", err)
	}
	falseAlarms := len(o.CrossAlerts)
	fmt.Fprintf(out, "  benign four-point run: %d cross-point false alarms\n", falseAlarms)
	return nil
}
