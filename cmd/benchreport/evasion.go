package main

import (
	"fmt"
	"io"
	"strings"

	"scidive/internal/experiments"
)

// evasionKinds are the classifier-evasion attack families, each run over
// both trunk transports (UDP datagrams and the TCP signaling stream).
var evasionKinds = []string{"rtptunnel", "sipinrtp", "torture"}

// runEvasion replays the evasion corpus and reports, per scenario, the
// self-alerts the content-confirmed classifier raised and the distiller's
// classification ledger — the raw/ignored/mismatched counters are the
// measurement: a port-only classifier would show mismatched=0 with the
// evasion traffic silently misfiled.
func runEvasion(out io.Writer, seed int64) error {
	fmt.Fprintln(out, "Evasion corpus (content-confirmed classification):")
	for _, kind := range evasionKinds {
		for _, stream := range []bool{false, true} {
			o, err := experiments.RunEvasion(seed, kind, stream)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s\n", o)
			d := o.Distill
			fmt.Fprintf(out, "  classified: sip=%d rtp=%d rtcp=%d acct=%d raw=%d ignored=%d mismatched=%d\n",
				d.SIP, d.RTP, d.RTCP, d.Acct, d.Raw, d.Ignored, d.Mismatched)
			var self []string
			for _, a := range o.Alerts {
				if a.Rule == "protocol-mismatch" || a.Rule == "evasion-suspect" {
					self = append(self, fmt.Sprintf("%s@%.0fms", a.Rule, a.At.Seconds()*1000))
				}
			}
			if len(self) > 0 {
				fmt.Fprintf(out, "  self-alerts: %s\n", strings.Join(self, " "))
			}
		}
	}
	return nil
}
