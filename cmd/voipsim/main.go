// Command voipsim simulates the SCIDIVE testbed (clients, proxy,
// accounting, attacker) running a chosen scenario and records all hub
// traffic to an SCAP capture file for offline analysis with the scidive
// command.
//
// Usage:
//
//	voipsim -scenario bye -seed 1 -out bye.scap
//
// Scenarios: benign, bye, fakeim, hijack, rtp, rtp-crash, flood, guess,
// billing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"scidive/internal/capture"
	"scidive/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "voipsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("voipsim", flag.ContinueOnError)
	scenarioName := fs.String("scenario", "benign",
		"scenario to simulate: "+strings.Join(experiments.ScenarioNames(), ", "))
	seed := fs.Int64("seed", 1, "simulation random seed")
	outPath := fs.String("out", "", "SCAP capture output path (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		fs.Usage()
		return fmt.Errorf("-out is required")
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	w := capture.NewWriter(f)
	outcome, err := experiments.RunScenario(*scenarioName, *seed, func(at time.Duration, frame []byte) {
		if err := w.WriteFrame(at, frame); err != nil {
			fmt.Fprintln(os.Stderr, "voipsim: capture write:", err)
		}
	})
	if err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "scenario %s (seed %d): %s\n", *scenarioName, *seed, outcome.Impact)
	fmt.Fprintf(out, "wrote %d frames to %s\n", w.Count(), *outPath)
	return nil
}
