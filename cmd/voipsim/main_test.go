package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scidive/internal/capture"
)

func TestRunWritesCapture(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bye.scap")
	var buf strings.Builder
	if err := run([]string{"-scenario", "bye", "-seed", "3", "-out", out}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Errorf("output = %q", buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := capture.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(recs) < 100 {
		t.Errorf("capture has %d frames, want a full scenario", len(recs))
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-scenario", "bye"}, &buf); err == nil {
		t.Error("missing -out accepted")
	}
	out := filepath.Join(t.TempDir(), "x.scap")
	if err := run([]string{"-scenario", "nope", "-out", out}, &buf); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
