package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"
	"strings"
	"time"

	"scidive/internal/coop"
	"scidive/internal/core"
)

// Digest stream files (-digest-out / -aggregate) hold a probe's exported
// evidence: a fixed header followed by length-prefixed digest frames in
// the exact wire encoding probes ship over the control port.
const (
	digestFileMagic   = "SCDF"
	digestFileVersion = 1
	// digestChunkEvents caps how many events ride in one digest frame;
	// the probe cuts a new frame past it so single frames stay small
	// enough to ship (and budgets never silently shed in file mode).
	digestChunkEvents = 64
)

// probeExporter adapts the core Exporter to the CLI: it observes the
// engine's event stream, cuts digests in fixed-size chunks, and spools
// the encoded frames for the end-of-run file write.
type probeExporter struct {
	point    string
	exporter *core.Exporter
	frames   [][]byte
}

// newProbeExporter parses the -export spec ("" = every event type) and
// hooks the exporter into the engine's event callback.
func newProbeExporter(point, exportSpec string, limits core.Limits, eng idsEngine) (*probeExporter, error) {
	var types []core.EventType
	if exportSpec != "" {
		for _, name := range strings.Split(exportSpec, ",") {
			name = strings.TrimSpace(name)
			t, ok := core.EventTypeByName(name)
			if !ok {
				return nil, fmt.Errorf("-export: unknown event type %q", name)
			}
			types = append(types, t)
		}
	}
	p := &probeExporter{point: point, exporter: core.NewExporter(limits, types...)}
	eng.OnEvent(func(ev core.Event) {
		p.exporter.Observe(ev)
		if p.exporter.Pending() >= digestChunkEvents {
			p.cut()
		}
	})
	return p, nil
}

// cut flushes pending events into one encoded digest frame.
func (p *probeExporter) cut() {
	if d := p.exporter.Flush(p.point); d != nil {
		p.frames = append(p.frames, core.EncodeDigest(d))
	}
}

// WriteFile cuts the final digest and writes the stream file.
func (p *probeExporter) WriteFile(path string) error {
	p.cut()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	header := append([]byte(digestFileMagic), digestFileVersion)
	if _, err := f.Write(header); err != nil {
		return err
	}
	var lenbuf [4]byte
	for _, frame := range p.frames {
		binary.BigEndian.PutUint32(lenbuf[:], uint32(len(frame)))
		if _, err := f.Write(lenbuf[:]); err != nil {
			return err
		}
		if _, err := f.Write(frame); err != nil {
			return err
		}
	}
	return f.Close()
}

// readDigestFile parses a digest stream file into its frames.
func readDigestFile(path string) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	header := len(digestFileMagic) + 1
	if len(data) < header || string(data[:4]) != digestFileMagic {
		return nil, fmt.Errorf("%s: not a digest stream file", path)
	}
	if data[4] != digestFileVersion {
		return nil, fmt.Errorf("%s: digest stream version %d (this build reads only v%d)", path, data[4], digestFileVersion)
	}
	var frames [][]byte
	rest := data[header:]
	for len(rest) > 0 {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%s: truncated frame length", path)
		}
		n := binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < n {
			return nil, fmt.Errorf("%s: truncated digest frame", path)
		}
		frames = append(frames, rest[:n])
		rest = rest[n:]
	}
	return frames, nil
}

// runAggregate merges digest stream files from several probes through
// the cross-point ruleset and reports the alerts only the combined
// evidence can raise. The merge is deterministic: alerts depend on the
// digests' content, not on file order or arrival interleaving.
func runAggregate(paths []string, rules []core.Rule, jsonOut bool, out io.Writer) error {
	if len(paths) == 0 {
		return errors.New("-aggregate needs digest stream files as arguments")
	}
	if rules == nil {
		rules = core.CrossPointRuleset()
	}
	agg := coop.NewAggregator(coop.AggregatorConfig{Rules: rules})
	var src netip.AddrPort // ack-less: no transport, zero source
	var last time.Duration
	for _, path := range paths {
		frames, err := readDigestFile(path)
		if err != nil {
			return err
		}
		for _, frame := range frames {
			if d, err := core.DecodeDigest(frame); err == nil {
				for _, ev := range d.Events {
					if ev.At > last {
						last = ev.At
					}
				}
			}
			agg.HandleDigest(src, frame)
		}
	}
	agg.Finalize(last)
	alerts := agg.Alerts()
	if jsonOut {
		return writeAlertsJSON(out, alerts)
	}
	fmt.Fprintln(out, "=== cross-point alerts ===")
	if len(alerts) == 0 {
		fmt.Fprintln(out, "(none)")
	}
	for _, a := range alerts {
		fmt.Fprintln(out, a)
	}
	st := agg.Stats()
	points := agg.Points()
	sort.Strings(points)
	fmt.Fprintf(out, "=== aggregator ===\ndigests=%d buffered=%d duplicates=%d corrupt=%d events=%d probes=%s\n",
		st.DigestsAccepted, st.DigestsBuffered, st.DuplicatesDropped, st.CorruptDropped,
		st.EventsMerged, strings.Join(points, ","))
	return nil
}
