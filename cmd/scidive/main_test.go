package main

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"scidive/internal/capture"
	"scidive/internal/core"
	"scidive/internal/experiments"
)

// writeScenarioCapture records a scenario to an SCAP file for CLI tests.
func writeScenarioCapture(t *testing.T, name string, seed int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".scap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := capture.NewWriter(f)
	if _, err := experiments.RunScenario(name, seed, func(at time.Duration, frame []byte) {
		_ = w.WriteFrame(at, frame)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeScenarioPcap records a scenario as a classic pcap (big-endian,
// nanosecond magic, Ethernet linktype) for the auto-detection tests.
func writeScenarioPcap(t *testing.T, name string, seed int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b23c4d) // pcap nanosecond magic
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint32(hdr[16:20], capture.MaxFrameLen) // snaplen
	binary.BigEndian.PutUint32(hdr[20:24], 1)                   // LINKTYPE_ETHERNET
	if _, err := f.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.RunScenario(name, seed, func(at time.Duration, frame []byte) {
		rec := make([]byte, 16+len(frame))
		binary.BigEndian.PutUint32(rec[0:4], uint32(at/time.Second))
		binary.BigEndian.PutUint32(rec[4:8], uint32(at%time.Second))
		binary.BigEndian.PutUint32(rec[8:12], uint32(len(frame)))
		binary.BigEndian.PutUint32(rec[12:16], uint32(len(frame)))
		copy(rec[16:], frame)
		_, _ = f.Write(rec)
	}); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayPcapDetectsAttack proves the README's pcap walkthrough: a
// standard pcap of TCP SIP trunk traffic (plus its UDP media) feeds the
// engine through -in auto-detection and raises the same alert.
func TestReplayPcapDetectsAttack(t *testing.T) {
	path := writeScenarioPcap(t, "tcptrunk-split", 7)
	var buf strings.Builder
	if err := run([]string{"-in", path, "-events"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "bye-attack") {
		t.Errorf("pcap replay missed the attack:\n%s", out)
	}
	if !strings.Contains(out, "rtp-after-bye") {
		t.Errorf("pcap replay missed the orphan-media events:\n%s", out)
	}
}

func TestReplayDetectsAttack(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 5)
	var buf strings.Builder
	if err := run([]string{"-in", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "bye-attack") {
		t.Errorf("replay missed the attack:\n%s", out)
	}
	if !strings.Contains(out, "=== stats ===") {
		t.Error("no stats section")
	}
}

func TestReplayBenignIsQuiet(t *testing.T) {
	path := writeScenarioCapture(t, "benign", 6)
	var buf strings.Builder
	if err := run([]string{"-in", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "(none)") {
		t.Errorf("benign replay raised alerts:\n%s", buf.String())
	}
}

func TestReplayWithEventsAndDirect(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 7)
	var buf strings.Builder
	if err := run([]string{"-in", path, "-events"}, &buf); err != nil {
		t.Fatalf("run -events: %v", err)
	}
	if !strings.Contains(buf.String(), "=== events ===") ||
		!strings.Contains(buf.String(), "sip-bye") {
		t.Error("event log missing")
	}
	buf.Reset()
	if err := run([]string{"-in", path, "-direct"}, &buf); err != nil {
		t.Fatalf("run -direct: %v", err)
	}
	if !strings.Contains(buf.String(), "bye-attack") {
		t.Error("direct mode missed the attack")
	}
}

func TestReplaySharded(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 5)
	var serial, sharded strings.Builder
	if err := run([]string{"-in", path, "-shards", "1", "-events"}, &serial); err != nil {
		t.Fatalf("run serial: %v", err)
	}
	if err := run([]string{"-in", path, "-shards", "4", "-events"}, &sharded); err != nil {
		t.Fatalf("run -shards 4: %v", err)
	}
	// The sharded engine must be output-identical to the serial one.
	if serial.String() != sharded.String() {
		t.Errorf("sharded output diverged from serial:\n--- serial ---\n%s--- sharded ---\n%s",
			serial.String(), sharded.String())
	}
	if !strings.Contains(sharded.String(), "bye-attack") {
		t.Error("sharded replay missed the attack")
	}
	// The direct-matching ablation has no sharded mode.
	var buf strings.Builder
	if err := run([]string{"-in", path, "-direct", "-shards", "4"}, &buf); err == nil {
		t.Error("-direct with -shards 4 accepted")
	}
}

func TestReplayParallelIngest(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 5)
	var serial, parallel strings.Builder
	if err := run([]string{"-in", path, "-shards", "1", "-events"}, &serial); err != nil {
		t.Fatalf("run serial: %v", err)
	}
	if err := run([]string{"-in", path, "-shards", "4", "-ingest", "4", "-events"}, &parallel); err != nil {
		t.Fatalf("run -shards 4 -ingest 4: %v", err)
	}
	// The partitioned front end must be output-identical to the serial engine.
	if serial.String() != parallel.String() {
		t.Errorf("parallel-ingest output diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	var buf strings.Builder
	if err := run([]string{"-in", path, "-ingest", "0"}, &buf); err == nil {
		t.Error("-ingest 0 accepted")
	}
	if err := run([]string{"-in", path, "-shards", "1", "-ingest", "2"}, &buf); err == nil {
		t.Error("-ingest 2 with the serial engine accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/file.scap"}, &buf); err == nil {
		t.Error("nonexistent file accepted")
	}
}

func TestReplayWithCustomRulesFile(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 8)
	// A ruleset that only knows the BYE attack.
	rules := "rule custom-bye critical cross stateful {\n" +
		"    seq sip-bye, rtp-after-bye\n" +
		"}\n"
	rulesPath := filepath.Join(t.TempDir(), "custom.rules")
	if err := os.WriteFile(rulesPath, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-in", path, "-rules", rulesPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "custom-bye") {
		t.Errorf("custom rule did not fire:\n%s", buf.String())
	}
	// Errors surface for broken rule files.
	badPath := filepath.Join(t.TempDir(), "bad.rules")
	if err := os.WriteFile(badPath, []byte("rule x nope {\nseq sip-bye\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-rules", badPath}, &buf); err == nil {
		t.Error("bad rules file accepted")
	}
	if err := run([]string{"-in", path, "-rules", "/nonexistent.rules"}, &buf); err == nil {
		t.Error("missing rules file accepted")
	}
}

func TestReplayWithShippedDefaultRules(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 9)
	var buf strings.Builder
	if err := run([]string{"-in", path, "-rules", "../../rules/default.rules"}, &buf); err != nil {
		t.Fatalf("run with shipped rules: %v", err)
	}
	if !strings.Contains(buf.String(), "bye-attack") {
		t.Errorf("shipped ruleset missed the attack:\n%s", buf.String())
	}
}

func TestParseLimits(t *testing.T) {
	l, err := parseLimits("sessions=4096, frags=64,streams=48,ims=32,seqs=128,bindings=16,alerts=1000,events=2000")
	if err != nil {
		t.Fatalf("parseLimits: %v", err)
	}
	if l.MaxSessions != 4096 || l.MaxFragGroups != 64 || l.MaxStreams != 48 || l.MaxIMHistories != 32 ||
		l.MaxSeqTrackers != 128 || l.MaxBindings != 16 ||
		l.MaxRetainedAlerts != 1000 || l.MaxRetainedEvents != 2000 {
		t.Errorf("parsed limits = %+v", l)
	}
	if l, err := parseLimits(""); err != nil || l != (core.Limits{}) {
		t.Errorf("empty spec = %+v, %v; want zero limits", l, err)
	}
	for _, bad := range []string{"sessions", "widgets=3", "sessions=x", "sessions=-1", "sessions=4,"} {
		if _, err := parseLimits(bad); err == nil {
			t.Errorf("parseLimits(%q) accepted", bad)
		}
	}
}

func TestParseCorrelators(t *testing.T) {
	var buf strings.Builder
	// Empty spec selects the full default registry (nil = defaults).
	if regs, err := parseCorrelators("", &buf); err != nil || regs != nil {
		t.Errorf("empty spec = %v, %v; want nil, nil", regs, err)
	}
	// A subset is honored, but in registry order regardless of input order.
	regs, err := parseCorrelators("rtp,sip", &buf)
	if err != nil {
		t.Fatalf("parseCorrelators: %v", err)
	}
	if len(regs) != 2 || regs[0].Name != "sip" || regs[1].Name != "rtp" {
		names := make([]string, len(regs))
		for i, r := range regs {
			names[i] = r.Name
		}
		t.Errorf("subset = %v, want registry order [sip rtp]", names)
	}
	for _, bad := range []string{"bogus", "sip,,rtp", ",", "sip,widget"} {
		if _, err := parseCorrelators(bad, &buf); err == nil {
			t.Errorf("parseCorrelators(%q) accepted", bad)
		}
	}
	// "help" lists the registry and selects nothing.
	buf.Reset()
	if regs, err := parseCorrelators("help", &buf); err != nil || regs != nil {
		t.Errorf("help = %v, %v; want nil, nil", regs, err)
	}
	if !strings.Contains(buf.String(), "options-scan") {
		t.Errorf("help output missing a registered correlator:\n%s", buf.String())
	}
}

func TestCorrelatorSelectionGatesDetection(t *testing.T) {
	path := writeScenarioCapture(t, "optionsscan", 7)
	// Full registry: the cross-dialog OPTIONS sweep is detected.
	var all strings.Builder
	if err := run([]string{"-in", path}, &all); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(all.String(), "sip-options-scan") {
		t.Errorf("full registry missed the scan:\n%s", all.String())
	}
	// Without the options-scan correlator the same capture is quiet.
	var subset strings.Builder
	if err := run([]string{"-in", path, "-correlators", "sip,im,rtp,rtcp,acct"}, &subset); err != nil {
		t.Fatalf("run -correlators: %v", err)
	}
	if strings.Contains(subset.String(), "sip-options-scan") {
		t.Errorf("disabled correlator still fired:\n%s", subset.String())
	}
	// -correlators help works without -in and prints the registry.
	var help strings.Builder
	if err := run([]string{"-correlators", "help"}, &help); err != nil {
		t.Fatalf("run -correlators help: %v", err)
	}
	if !strings.Contains(help.String(), "dispatch order") {
		t.Errorf("help output = %q", help.String())
	}
}

func TestReplayWithLimitsReportsOverload(t *testing.T) {
	path := writeScenarioCapture(t, "fragflood", 5)
	// Unbounded: no degradation, so no overload line (historic output).
	var plain strings.Builder
	if err := run([]string{"-in", path}, &plain); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(plain.String(), "overload:") {
		t.Errorf("unbounded run printed an overload line:\n%s", plain.String())
	}
	// Capped: the fragment flood overflows the budget, and the evictions
	// must be reported, identically for serial and sharded engines.
	var serial, sharded strings.Builder
	args := []string{"-in", path, "-limits", "frags=8,sessions=64"}
	if err := run(append(args, "-shards", "1"), &serial); err != nil {
		t.Fatalf("run -limits serial: %v", err)
	}
	if err := run(append(args, "-shards", "4"), &sharded); err != nil {
		t.Fatalf("run -limits -shards 4: %v", err)
	}
	if !strings.Contains(serial.String(), "overload:") {
		t.Errorf("capped flood printed no overload line:\n%s", serial.String())
	}
	if serial.String() != sharded.String() {
		t.Errorf("capped sharded output diverged from serial:\n--- serial ---\n%s--- sharded ---\n%s",
			serial.String(), sharded.String())
	}
	// A bad spec is rejected before any engine is built.
	if err := run([]string{"-in", path, "-limits", "bogus"}, &serial); err == nil {
		t.Error("bad -limits spec accepted")
	}
}

func TestLiveScenarioAndJSONOutput(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-scenario", "bye", "-seed", "4", "-json"}, &buf); err != nil {
		t.Fatalf("run -scenario: %v", err)
	}
	out := buf.String()
	var line string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "{") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no JSON alert line:\n%s", out)
	}
	var a alertJSON
	if err := json.Unmarshal([]byte(line), &a); err != nil {
		t.Fatalf("bad JSON %q: %v", line, err)
	}
	if a.Rule != "bye-attack" || a.Severity != "critical" || a.AtSeconds <= 0 || a.Count < 1 {
		t.Errorf("alert = %+v", a)
	}
	// Unknown live scenario errors.
	if err := run([]string{"-scenario", "nope"}, &buf); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// writeSplitCaptures records one scenario into a truncated capture (the
// frames before a crash) and a full capture (the whole trace a resumed
// IDS replays from the start).
func writeSplitCaptures(t *testing.T, name string, seed int64) (partial, full string) {
	t.Helper()
	var frames []capture.Record
	if _, err := experiments.RunScenario(name, seed, func(at time.Duration, frame []byte) {
		frames = append(frames, capture.Record{Time: at, Frame: append([]byte(nil), frame...)})
	}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	writeRecs := func(path string, recs []capture.Record) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		w := capture.NewWriter(f)
		for _, r := range recs {
			if err := w.WriteFrame(r.Time, r.Frame); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	partial = filepath.Join(dir, name+"-partial.scap")
	full = filepath.Join(dir, name+"-full.scap")
	writeRecs(partial, frames[:len(frames)/2])
	writeRecs(full, frames)
	return partial, full
}

// alertSection extracts everything from the alerts header on, so resumed
// runs (which print an extra resume line up front) stay comparable.
func alertSection(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "=== alerts ===")
	if i < 0 {
		t.Fatalf("no alerts section in output:\n%s", out)
	}
	return out[i:]
}

// TestCheckpointResumeCLI runs the crash-recovery walkthrough: process
// half the capture with -checkpoint, die, then -resume over the full
// capture. The resumed run must report exactly what an uninterrupted
// run reports — serial and sharded alike.
func TestCheckpointResumeCLI(t *testing.T) {
	partial, full := writeSplitCaptures(t, "bye", 5)
	for _, shardArgs := range [][]string{{"-shards", "1"}, {"-shards", "2"}} {
		ckpt := filepath.Join(t.TempDir(), "ids.ckpt")
		var first strings.Builder
		args := append([]string{"-in", partial, "-checkpoint", ckpt}, shardArgs...)
		if err := run(args, &first); err != nil {
			t.Fatalf("checkpointing run %v: %v", shardArgs, err)
		}
		if _, err := os.Stat(ckpt); err != nil {
			t.Fatalf("no checkpoint written: %v", err)
		}

		var resumed strings.Builder
		args = append([]string{"-in", full, "-resume", ckpt}, shardArgs...)
		if err := run(args, &resumed); err != nil {
			t.Fatalf("resumed run %v: %v", shardArgs, err)
		}
		if !strings.Contains(resumed.String(), "resumed from") {
			t.Errorf("resumed run did not report the resume:\n%s", resumed.String())
		}

		var uninterrupted strings.Builder
		args = append([]string{"-in", full}, shardArgs...)
		if err := run(args, &uninterrupted); err != nil {
			t.Fatalf("uninterrupted run %v: %v", shardArgs, err)
		}
		got := alertSection(t, resumed.String())
		want := alertSection(t, uninterrupted.String())
		if got != want {
			t.Errorf("resumed output %v diverged from uninterrupted:\n--- resumed ---\n%s--- uninterrupted ---\n%s",
				shardArgs, got, want)
		}
		if !strings.Contains(got, "bye-attack") {
			t.Errorf("resumed run missed the attack:\n%s", got)
		}
	}
}

// TestCheckpointEveryCLI checkpoints periodically; the last on-disk
// checkpoint must cover the whole run, so resuming it and replaying the
// same capture delivers zero new frames yet reports identical alerts.
func TestCheckpointEveryCLI(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 5)
	ckpt := filepath.Join(t.TempDir(), "ids.ckpt")
	var first strings.Builder
	if err := run([]string{"-in", path, "-shards", "2", "-checkpoint", ckpt, "-checkpoint-every", "5"}, &first); err != nil {
		t.Fatalf("periodic checkpoint run: %v", err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	info, err := core.PeekSnapshotInfo(data)
	if err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if !info.Sharded || info.Shards != 2 || info.Frames == 0 {
		t.Fatalf("final checkpoint header = %+v", info)
	}
	var resumed strings.Builder
	if err := run([]string{"-in", path, "-shards", "2", "-resume", ckpt}, &resumed); err != nil {
		t.Fatalf("resume of final checkpoint: %v", err)
	}
	if got, want := alertSection(t, resumed.String()), alertSection(t, first.String()); got != want {
		t.Errorf("resume-at-end output diverged:\n--- resumed ---\n%s--- first ---\n%s", got, want)
	}
}

// TestResumeMismatchCLI: resuming into a process with a different
// detection configuration must fail with an error that names the mismatch
// and says how to proceed — while geometry (shard count, engine kind) is
// NOT a mismatch: portable checkpoints resume at any width.
func TestResumeMismatchCLI(t *testing.T) {
	partial, full := writeSplitCaptures(t, "bye", 5)
	ckpt := filepath.Join(t.TempDir(), "ids.ckpt")
	var buf strings.Builder
	if err := run([]string{"-in", partial, "-shards", "2", "-checkpoint", ckpt}, &buf); err != nil {
		t.Fatalf("checkpointing run: %v", err)
	}
	expectErr := func(args []string, wants ...string) {
		t.Helper()
		var out strings.Builder
		err := run(args, &out)
		if err == nil {
			t.Errorf("run %v accepted a mismatched checkpoint", args)
			return
		}
		for _, w := range wants {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("run %v error %q does not mention %q", args, err, w)
			}
		}
	}
	// Geometry changes are accepted: the checkpoint written at 2 shards
	// resumes serial, wider, and with parallel ingest, each reproducing the
	// uninterrupted run's alerts exactly.
	var uninterrupted strings.Builder
	if err := run([]string{"-in", full, "-shards", "1"}, &uninterrupted); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	for _, geo := range [][]string{
		{"-shards", "1"},
		{"-shards", "4"},
		{"-shards", "8", "-ingest", "4"},
	} {
		args := append([]string{"-in", full, "-resume", ckpt}, geo...)
		var resumed strings.Builder
		if err := run(args, &resumed); err != nil {
			t.Fatalf("cross-geometry resume %v: %v", geo, err)
		}
		if got, want := alertSection(t, resumed.String()), alertSection(t, uninterrupted.String()); got != want {
			t.Errorf("cross-geometry resume %v diverged:\n--- resumed ---\n%s--- uninterrupted ---\n%s", geo, got, want)
		}
	}

	expectErr([]string{"-in", full, "-shards", "2", "-resume", ckpt, "-correlators", "sip,rtp"}, "correlator set", "resume with -correlators")
	expectErr([]string{"-in", full, "-shards", "2", "-resume", ckpt, "-limits", "sessions=9"}, "config hash", "capture-time settings")
	expectErr([]string{"-in", full, "-shards", "2", "-resume", ckpt, "-window", "9s"}, "config hash", "capture-time settings")

	// An edited ruleset is refused by its hash.
	rulesFile := filepath.Join(t.TempDir(), "edited.rules")
	edited := "rule custom-bye critical cross stateful {\n    seq sip-bye, rtp-after-bye\n}\n"
	if err := os.WriteFile(rulesFile, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	expectErr([]string{"-in", full, "-shards", "2", "-resume", ckpt, "-rules", rulesFile}, "ruleset hash", "rules changed", "hot-reload")

	// Flag-combination errors surface before any engine runs.
	expectErr([]string{"-in", full, "-checkpoint-every", "3"}, "-checkpoint-every requires -checkpoint")
	expectErr([]string{"-in", full, "-direct", "-shards", "1", "-resume", ckpt}, "-direct")
	expectErr([]string{"-in", full, "-shards", "2", "-resume", filepath.Join(t.TempDir(), "missing.ckpt")})

	// A corrupt checkpoint file is rejected with the checksum error.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	expectErr([]string{"-in", full, "-shards", "2", "-resume", bad}, "checksum")
}

// TestScenarioCheckpointResume covers the -scenario path: a live
// scenario can checkpoint, and a second process can resume it with the
// same scenario and seed.
func TestScenarioCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ids.ckpt")
	var first strings.Builder
	if err := run([]string{"-scenario", "bye", "-seed", "4", "-shards", "2", "-checkpoint", ckpt}, &first); err != nil {
		t.Fatalf("scenario checkpoint run: %v", err)
	}
	var resumed strings.Builder
	if err := run([]string{"-scenario", "bye", "-seed", "4", "-shards", "2", "-resume", ckpt}, &resumed); err != nil {
		t.Fatalf("scenario resume run: %v", err)
	}
	if got, want := alertSection(t, resumed.String()), alertSection(t, first.String()); got != want {
		t.Errorf("scenario resume diverged:\n--- resumed ---\n%s--- first ---\n%s", got, want)
	}
}

// TestReloadRulesCLI drives the deterministic -reload-rules hook: an
// unchanged ruleset reloaded every few frames must report each reload and
// leave the alert output byte-identical to a static run (the
// reload-vs-static differential at the process boundary), for both engine
// kinds.
func TestReloadRulesCLI(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 5)
	rulesFile := filepath.Join(t.TempDir(), "default.rules")
	if err := os.WriteFile(rulesFile, []byte(core.FormatRules(core.DefaultRuleset())), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []string{"1", "2"} {
		var static strings.Builder
		if err := run([]string{"-in", path, "-shards", shards, "-rules", rulesFile}, &static); err != nil {
			t.Fatalf("static run: %v", err)
		}
		var reloaded strings.Builder
		if err := run([]string{"-in", path, "-shards", shards, "-rules", rulesFile, "-reload-rules", "5"}, &reloaded); err != nil {
			t.Fatalf("reloading run: %v", err)
		}
		if !strings.Contains(reloaded.String(), "rules reloaded from "+rulesFile+": 0 in-flight partial matches dropped") {
			t.Errorf("shards=%s: no reload notice in output:\n%s", shards, reloaded.String())
		}
		if got, want := alertSection(t, reloaded.String()), alertSection(t, static.String()); got != want {
			t.Errorf("shards=%s: reload-vs-static alerts diverged:\n--- reloaded ---\n%s--- static ---\n%s",
				shards, got, want)
		}
	}
}

// TestReloadRulesSIGHUP exercises the live signal path: SIGHUPs hammer the
// process throughout a replay while the rules file is repeatedly rewritten
// — sometimes the identical valid ruleset, sometimes unparseable garbage.
// Whatever lands, identical-ruleset reloads are no-ops and garbage reloads
// are skipped with the active ruleset kept, so the run must complete
// cleanly with the static run's exact alerts. The test registers its own
// SIGHUP handler first so a signal arriving before run installs its
// watcher cannot kill the test process.
func TestReloadRulesSIGHUP(t *testing.T) {
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGHUP)
	defer signal.Stop(guard)

	path := writeScenarioCapture(t, "bye", 5)
	valid := []byte(core.FormatRules(core.DefaultRuleset()))
	rulesFile := filepath.Join(t.TempDir(), "default.rules")
	if err := os.WriteFile(rulesFile, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	var static strings.Builder
	if err := run([]string{"-in", path, "-shards", "2", "-rules", rulesFile}, &static); err != nil {
		t.Fatalf("static run: %v", err)
	}

	// swapIn replaces the rules file atomically (temp + rename) so a
	// concurrent reload never reads a truncated file — a partial write
	// could parse as a valid SUBSET ruleset and legitimately change
	// behavior, which is not the failure mode under test.
	swapIn := func(content []byte) {
		tmp := rulesFile + ".tmp"
		if err := os.WriteFile(tmp, content, 0o644); err == nil {
			os.Rename(tmp, rulesFile)
		}
	}
	stop := make(chan struct{})
	hammerDone := make(chan struct{})
	go func() {
		defer close(hammerDone)
		garbage := []byte("rule broken nope {\n    seq sip-bye\n")
		for i := 0; ; i++ {
			select {
			case <-stop:
				swapIn(valid)
				return
			default:
			}
			if i%2 == 0 {
				swapIn(garbage)
			} else {
				swapIn(valid)
			}
			syscall.Kill(os.Getpid(), syscall.SIGHUP)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	// Startup must parse a valid file; the hammer may already have swapped
	// garbage in, so retry until the startup parse wins the race.
	var reloaded strings.Builder
	var err error
	for {
		reloaded.Reset()
		if err = run([]string{"-in", path, "-shards", "2", "-rules", rulesFile}, &reloaded); err == nil ||
			!strings.Contains(err.Error(), "rules:") {
			break
		}
	}
	close(stop)
	<-hammerDone
	if err != nil {
		t.Fatalf("run under SIGHUP storm: %v", err)
	}
	if got, want := alertSection(t, reloaded.String()), alertSection(t, static.String()); got != want {
		t.Errorf("SIGHUP-storm alerts diverged:\n--- reloaded ---\n%s--- static ---\n%s", got, want)
	}
}
