package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scidive/internal/capture"
	"scidive/internal/experiments"
)

// writeScenarioCapture records a scenario to an SCAP file for CLI tests.
func writeScenarioCapture(t *testing.T, name string, seed int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name+".scap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := capture.NewWriter(f)
	if _, err := experiments.RunScenario(name, seed, func(at time.Duration, frame []byte) {
		_ = w.WriteFrame(at, frame)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayDetectsAttack(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 5)
	var buf strings.Builder
	if err := run([]string{"-in", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "bye-attack") {
		t.Errorf("replay missed the attack:\n%s", out)
	}
	if !strings.Contains(out, "=== stats ===") {
		t.Error("no stats section")
	}
}

func TestReplayBenignIsQuiet(t *testing.T) {
	path := writeScenarioCapture(t, "benign", 6)
	var buf strings.Builder
	if err := run([]string{"-in", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "(none)") {
		t.Errorf("benign replay raised alerts:\n%s", buf.String())
	}
}

func TestReplayWithEventsAndDirect(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 7)
	var buf strings.Builder
	if err := run([]string{"-in", path, "-events"}, &buf); err != nil {
		t.Fatalf("run -events: %v", err)
	}
	if !strings.Contains(buf.String(), "=== events ===") ||
		!strings.Contains(buf.String(), "sip-bye") {
		t.Error("event log missing")
	}
	buf.Reset()
	if err := run([]string{"-in", path, "-direct"}, &buf); err != nil {
		t.Fatalf("run -direct: %v", err)
	}
	if !strings.Contains(buf.String(), "bye-attack") {
		t.Error("direct mode missed the attack")
	}
}

func TestReplaySharded(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 5)
	var serial, sharded strings.Builder
	if err := run([]string{"-in", path, "-shards", "1", "-events"}, &serial); err != nil {
		t.Fatalf("run serial: %v", err)
	}
	if err := run([]string{"-in", path, "-shards", "4", "-events"}, &sharded); err != nil {
		t.Fatalf("run -shards 4: %v", err)
	}
	// The sharded engine must be output-identical to the serial one.
	if serial.String() != sharded.String() {
		t.Errorf("sharded output diverged from serial:\n--- serial ---\n%s--- sharded ---\n%s",
			serial.String(), sharded.String())
	}
	if !strings.Contains(sharded.String(), "bye-attack") {
		t.Error("sharded replay missed the attack")
	}
	// The direct-matching ablation has no sharded mode.
	var buf strings.Builder
	if err := run([]string{"-in", path, "-direct", "-shards", "4"}, &buf); err == nil {
		t.Error("-direct with -shards 4 accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var buf strings.Builder
	if err := run(nil, &buf); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent/file.scap"}, &buf); err == nil {
		t.Error("nonexistent file accepted")
	}
}

func TestReplayWithCustomRulesFile(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 8)
	// A ruleset that only knows the BYE attack.
	rules := "rule custom-bye critical cross stateful {\n" +
		"    seq sip-bye, rtp-after-bye\n" +
		"}\n"
	rulesPath := filepath.Join(t.TempDir(), "custom.rules")
	if err := os.WriteFile(rulesPath, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-in", path, "-rules", rulesPath}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "custom-bye") {
		t.Errorf("custom rule did not fire:\n%s", buf.String())
	}
	// Errors surface for broken rule files.
	badPath := filepath.Join(t.TempDir(), "bad.rules")
	if err := os.WriteFile(badPath, []byte("rule x nope {\nseq sip-bye\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-rules", badPath}, &buf); err == nil {
		t.Error("bad rules file accepted")
	}
	if err := run([]string{"-in", path, "-rules", "/nonexistent.rules"}, &buf); err == nil {
		t.Error("missing rules file accepted")
	}
}

func TestReplayWithShippedDefaultRules(t *testing.T) {
	path := writeScenarioCapture(t, "bye", 9)
	var buf strings.Builder
	if err := run([]string{"-in", path, "-rules", "../../rules/default.rules"}, &buf); err != nil {
		t.Fatalf("run with shipped rules: %v", err)
	}
	if !strings.Contains(buf.String(), "bye-attack") {
		t.Errorf("shipped ruleset missed the attack:\n%s", buf.String())
	}
}

func TestLiveScenarioAndJSONOutput(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-scenario", "bye", "-seed", "4", "-json"}, &buf); err != nil {
		t.Fatalf("run -scenario: %v", err)
	}
	out := buf.String()
	var line string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "{") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no JSON alert line:\n%s", out)
	}
	var a alertJSON
	if err := json.Unmarshal([]byte(line), &a); err != nil {
		t.Fatalf("bad JSON %q: %v", line, err)
	}
	if a.Rule != "bye-attack" || a.Severity != "critical" || a.AtSeconds <= 0 || a.Count < 1 {
		t.Errorf("alert = %+v", a)
	}
	// Unknown live scenario errors.
	if err := run([]string{"-scenario", "nope"}, &buf); err == nil {
		t.Error("unknown scenario accepted")
	}
}
