package main

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scidive/internal/capture"
	"scidive/internal/experiments"
	"scidive/internal/packet"
)

// writeVantageCaptures splits one scenario's traffic into per-vantage
// SCAP files the way physically separated taps would: the edge capture
// holds every frame touching the proxy, the gateway capture every frame
// touching a client. The control plane's own digest traffic rides the
// wire too — the port claim keeps it out of the replays.
func writeVantageCaptures(t *testing.T, name string, seed int64) (edge, gateway string) {
	t.Helper()
	proxy := netip.MustParseAddr("10.0.0.10")
	clientA := netip.MustParseAddr("10.0.0.1")
	clientB := netip.MustParseAddr("10.0.0.2")
	dir := t.TempDir()
	edge = filepath.Join(dir, "edge.scap")
	gateway = filepath.Join(dir, "gateway.scap")
	ef, err := os.Create(edge)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	gf, err := os.Create(gateway)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	ew, gw := capture.NewWriter(ef), capture.NewWriter(gf)
	if _, err := experiments.RunScenario(name, seed, func(at time.Duration, frame []byte) {
		eth, err := packet.UnmarshalEthernet(frame)
		if err != nil || eth.Type != packet.EtherTypeIPv4 {
			return
		}
		iph, _, err := packet.UnmarshalIPv4(eth.Payload)
		if err != nil {
			return
		}
		if iph.Src == proxy || iph.Dst == proxy {
			_ = ew.WriteFrame(at, frame)
		}
		if iph.Src == clientA || iph.Dst == clientA || iph.Src == clientB || iph.Dst == clientB {
			_ = gw.WriteFrame(at, frame)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := ew.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	return edge, gateway
}

// TestProbeAggregateCLI walks the offline cooperative pipeline end to
// end: two per-vantage captures are distilled into digest streams by
// -probe runs, and -aggregate merges them into the cross-point alert a
// single replay of either capture cannot raise.
func TestProbeAggregateCLI(t *testing.T) {
	edgeCap, gwCap := writeVantageCaptures(t, "coop-bye-split", 7)
	dir := t.TempDir()
	edgeDig := filepath.Join(dir, "edge.dig")
	gwDig := filepath.Join(dir, "gateway.dig")

	var buf strings.Builder
	if err := run([]string{"-in", edgeCap, "-shards", "1",
		"-probe", "edge", "-export", "sip-bye", "-digest-out", edgeDig}, &buf); err != nil {
		t.Fatalf("edge probe run: %v", err)
	}
	if err := run([]string{"-in", gwCap, "-shards", "1", "-rtp-activity-every", "500ms",
		"-probe", "gateway", "-export", "rtp-activity", "-digest-out", gwDig}, &buf); err != nil {
		t.Fatalf("gateway probe run: %v", err)
	}
	// Neither single-vantage replay saw the attack.
	if out := buf.String(); strings.Contains(out, "bye-attack") || strings.Contains(out, "teardown-split") {
		t.Fatalf("a single vantage replay detected the split attack alone:\n%s", out)
	}

	var agg strings.Builder
	if err := run([]string{"-aggregate", edgeDig, gwDig}, &agg); err != nil {
		t.Fatalf("aggregate run: %v", err)
	}
	out := agg.String()
	if !strings.Contains(out, "bye-teardown-split") {
		t.Errorf("aggregate missed the cross-point attack:\n%s", out)
	}
	if !strings.Contains(out, "probes=edge,gateway") {
		t.Errorf("aggregate did not account both probes:\n%s", out)
	}

	// Either digest stream alone must stay silent.
	for _, dig := range []string{edgeDig, gwDig} {
		var solo strings.Builder
		if err := run([]string{"-aggregate", dig}, &solo); err != nil {
			t.Fatalf("solo aggregate %s: %v", dig, err)
		}
		if s := solo.String(); strings.Contains(s, "teardown-split") {
			t.Errorf("solo digest stream %s raised the cross-point alert:\n%s", dig, s)
		}
	}
}

// TestProbeFlagValidation pins the mode's guard rails.
func TestProbeFlagValidation(t *testing.T) {
	var buf strings.Builder
	for _, args := range [][]string{
		{"-scenario", "bye", "-probe", "edge"},                                                    // no -digest-out
		{"-scenario", "bye", "-digest-out", "x.dig"},                                              // no -probe
		{"-scenario", "bye", "-export", "sip-bye"},                                                // no -probe
		{"-scenario", "bye", "-probe", "edge", "-digest-out", "x.dig", "-shards", "2"},            // sharded
		{"-scenario", "bye", "-probe", "edge", "-digest-out", "x.dig", "-shards", "1", "-direct"}, // ablation
		{"-scenario", "bye", "-probe", "edge", "-digest-out", "x.dig", "-shards", "1", "-export", "bogus"},
		{"-aggregate", "-scenario", "bye"}, // mode mix
		{"-aggregate"},                     // no files
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
