// Command scidive runs the SCIDIVE intrusion detection engine over an
// SCAP capture file (recorded with voipsim) or over a live simulated
// scenario, and reports events, alerts, and engine statistics.
//
// Usage:
//
//	scidive -in bye.scap [-events] [-window 1s] [-direct] [-rules FILE] [-json] [-shards N]
//	scidive -scenario bye [-seed 7]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"scidive/internal/capture"
	"scidive/internal/core"
	"scidive/internal/experiments"
)

// idsEngine is the surface shared by the serial Engine and the
// ShardedEngine; the CLI drives either through it.
type idsEngine interface {
	HandleFrame(at time.Duration, frame []byte)
	ReplayCapture(r *capture.Reader) error
	Alerts() []core.Alert
	Events() []core.Event
	Stats() core.EngineStats
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scidive:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scidive", flag.ContinueOnError)
	inPath := fs.String("in", "", "SCAP capture input path (required)")
	showEvents := fs.Bool("events", false, "print every generated event")
	window := fs.Duration("window", time.Second, "orphan-flow monitoring window m")
	direct := fs.Bool("direct", false, "bypass the event layer (direct trail matching ablation)")
	rulesPath := fs.String("rules", "", "ruleset file in the rule description language (default: built-in rules)")
	jsonOut := fs.Bool("json", false, "emit alerts as JSON lines instead of text")
	scenarioName := fs.String("scenario", "", "run a live simulated scenario instead of reading a capture")
	seed := fs.Int64("seed", 1, "seed for -scenario runs")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0), "detection worker shards; 1 runs the serial engine")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" && *scenarioName == "" {
		fs.Usage()
		return fmt.Errorf("-in or -scenario is required")
	}
	if *direct && *shards > 1 {
		return fmt.Errorf("-direct is a serial-engine ablation; use -shards 1")
	}
	var rules []core.Rule
	if *rulesPath != "" {
		text, err := os.ReadFile(*rulesPath)
		if err != nil {
			return err
		}
		rules, err = core.ParseRules(string(text))
		if err != nil {
			return err
		}
	}
	var f *os.File
	if *inPath != "" {
		var err error
		f, err = os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
	}

	opts := []core.EngineOption{}
	if *showEvents {
		opts = append(opts, core.WithEventLog())
	}
	cfg := core.Config{
		Gen:                 core.GenConfig{MonitorWindow: *window},
		Rules:               rules,
		DirectTrailMatching: *direct,
	}
	var eng idsEngine
	var sessionCount func() (sessions, trails int)
	if *shards > 1 {
		sharded := core.NewShardedEngine(cfg, *shards, opts...)
		defer sharded.Close()
		sessionCount = sharded.TrailCounts
		eng = sharded
	} else {
		serial := core.NewEngine(cfg, opts...)
		sessionCount = func() (int, int) { return serial.Trails().Sessions(), serial.Trails().Trails() }
		eng = serial
	}
	if *scenarioName != "" {
		outcome, err := experiments.RunScenario(*scenarioName, *seed, eng.HandleFrame)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "scenario %s: %s\n", *scenarioName, outcome.Impact)
	} else if err := eng.ReplayCapture(capture.NewReader(f)); err != nil {
		return err
	}

	if *showEvents {
		fmt.Fprintln(out, "=== events ===")
		for _, ev := range eng.Events() {
			fmt.Fprintln(out, ev)
		}
	}
	alerts := eng.Alerts()
	if *jsonOut {
		encoder := json.NewEncoder(out)
		for _, a := range alerts {
			if err := encoder.Encode(alertJSON{
				AtSeconds: a.At.Seconds(),
				Rule:      a.Rule,
				Severity:  a.Severity.String(),
				Session:   a.Session,
				Detail:    a.Detail,
				Count:     a.Count,
			}); err != nil {
				return err
			}
		}
	} else {
		fmt.Fprintln(out, "=== alerts ===")
		if len(alerts) == 0 {
			fmt.Fprintln(out, "(none)")
		}
		for _, a := range alerts {
			fmt.Fprintln(out, a)
		}
	}
	st := eng.Stats()
	sessions, trails := sessionCount()
	fmt.Fprintf(out, "=== stats ===\nframes=%d footprints=%d events=%d alerts=%d sessions=%d trails=%d\n",
		st.Frames, st.Footprints, st.Events, st.Alerts, sessions, trails)
	return nil
}

// alertJSON is the machine-readable alert export shape.
type alertJSON struct {
	AtSeconds float64 `json:"at_seconds"`
	Rule      string  `json:"rule"`
	Severity  string  `json:"severity"`
	Session   string  `json:"session"`
	Detail    string  `json:"detail"`
	Count     int     `json:"count"`
}
