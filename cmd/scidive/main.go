// Command scidive runs the SCIDIVE intrusion detection engine over an
// SCAP capture file (recorded with voipsim) or over a live simulated
// scenario, and reports events, alerts, and engine statistics.
//
// Usage:
//
//	scidive -in bye.scap [-events] [-window 1s] [-direct] [-rules FILE] [-json] [-shards N] [-ingest N]
//	scidive -scenario bye [-seed 7] [-limits sessions=4096,frags=64] [-shed 5ms] [-stall 2s] [-restart-shards]
//	scidive -scenario bye [-correlators sip,rtp,rtcp]   (subset of protocol correlators; -correlators help lists them)
//	scidive -in bye.scap -checkpoint ids.ckpt [-checkpoint-every 1000]   (crash recovery: checkpoint detection state)
//	scidive -in bye.scap -resume ids.ckpt   (restore state, skip the frames the checkpoint covers, keep replaying)
//	scidive -in edge.scap -probe edge -export sip-bye -digest-out edge.dig   (probe mode: export evidence as a digest stream)
//	scidive -aggregate edge.dig gateway.dig   (merge digest streams through the cross-point ruleset)
//
// Checkpoints are portable across engine geometry: a checkpoint written at
// any -shards/-ingest setting resumes at any other (grow 8 shards to 32 by
// checkpointing, restarting with the new width, and resuming).
//
// A running process hot-reloads its ruleset on SIGHUP: the -rules file is
// re-parsed and swapped in at a frame boundary without dropping a frame
// (a parse error keeps the active ruleset; in-flight partial matches of
// removed or edited rules are dropped and surfaced as a rule-reload
// alert). -reload-rules N does the same after every N delivered frames,
// deterministically, for tests and drills.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"scidive/internal/capture"
	"scidive/internal/core"
	"scidive/internal/experiments"
)

// idsEngine is the surface shared by the serial Engine and the
// ShardedEngine; the CLI drives either through it.
type idsEngine interface {
	HandleFrame(at time.Duration, frame []byte)
	ReplayCapture(r *capture.Reader) error
	Snapshot() ([]byte, error)
	RestoreSnapshot(data []byte) error
	ReloadRules(rules []core.Rule) (int, error)
	Alerts() []core.Alert
	Events() []core.Event
	Stats() core.EngineStats
	DistillerStats() core.DistillerStats
	OnEvent(fn func(core.Event))
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scidive:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scidive", flag.ContinueOnError)
	inPath := fs.String("in", "", "capture input path: SCAP, pcap, or pcapng, auto-detected (required)")
	showEvents := fs.Bool("events", false, "print every generated event")
	window := fs.Duration("window", time.Second, "orphan-flow monitoring window m")
	rtpActivityEvery := fs.Duration("rtp-activity-every", 0, "emit per-session rtp-activity liveness heartbeats at this cadence (0 = off); media-gateway probes export them for cross-point rules")
	direct := fs.Bool("direct", false, "bypass the event layer (direct trail matching ablation)")
	rulesPath := fs.String("rules", "", "ruleset file in the rule description language (default: built-in rules)")
	jsonOut := fs.Bool("json", false, "emit alerts as JSON lines instead of text")
	scenarioName := fs.String("scenario", "", "run a live simulated scenario instead of reading a capture")
	seed := fs.Int64("seed", 1, "seed for -scenario runs")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0), "detection worker shards; 1 runs the serial engine")
	ingest := fs.Int("ingest", 1, "parallel ingest routers partitioning capture decode (sharded engine only); 1 keeps the single synchronous router")
	correlatorsSpec := fs.String("correlators", "", "comma-separated protocol correlators to enable (default: all); see -correlators help")
	limitsSpec := fs.String("limits", "", "state budget caps as k=v pairs: sessions,frags,streams,ims,seqs,bindings,alerts,events (0 or absent = unbounded)")
	shed := fs.Duration("shed", 0, "shed (never block) frames bound for a shard whose queue stays full this long; 0 blocks")
	stall := fs.Duration("stall", 0, "quarantine a shard making no progress for this long (wall clock); 0 disables the watchdog")
	restartShards := fs.Bool("restart-shards", false, "restart a panicked shard instead of quarantining it: warm from the last checkpoint when one exists, else cold (raises shard-state-loss)")
	checkpointPath := fs.String("checkpoint", "", "write the detection state to this file when the run ends (atomic temp+rename)")
	checkpointEvery := fs.Int("checkpoint-every", 0, "with -checkpoint, also checkpoint after every N processed frames (0 = only at the end)")
	resumePath := fs.String("resume", "", "restore detection state from a checkpoint before replaying; the frames it covers are skipped")
	reloadEvery := fs.Int("reload-rules", 0, "hot-reload the -rules file after every N delivered frames (test hook; SIGHUP does the same on demand)")
	probePoint := fs.String("probe", "", "run as a probe at this observation point: export events as a digest stream (requires -digest-out)")
	exportSpec := fs.String("export", "", "with -probe, comma-separated event types to export (default: every event)")
	digestOut := fs.String("digest-out", "", "with -probe, write the digest stream to this file")
	aggregate := fs.Bool("aggregate", false, "merge digest stream files (the arguments) through the cross-point ruleset instead of reading a capture")
	if err := fs.Parse(args); err != nil {
		return err
	}
	correlators, err := parseCorrelators(*correlatorsSpec, out)
	if err != nil {
		return err
	}
	if *correlatorsSpec == "help" {
		return nil
	}
	var rules []core.Rule
	if *rulesPath != "" {
		text, err := os.ReadFile(*rulesPath)
		if err != nil {
			return err
		}
		rules, err = core.ParseRules(string(text))
		if err != nil {
			return err
		}
	}
	if *aggregate {
		if *inPath != "" || *scenarioName != "" || *probePoint != "" {
			return fmt.Errorf("-aggregate reads digest stream files only; it cannot be combined with -in, -scenario, or -probe")
		}
		return runAggregate(fs.Args(), rules, *jsonOut, out)
	}
	if *inPath == "" && *scenarioName == "" {
		fs.Usage()
		return fmt.Errorf("-in or -scenario is required")
	}
	if *probePoint != "" && *digestOut == "" {
		return fmt.Errorf("-probe requires -digest-out")
	}
	if *probePoint == "" && (*digestOut != "" || *exportSpec != "") {
		return fmt.Errorf("-digest-out and -export require -probe")
	}
	if *probePoint != "" && *shards > 1 {
		return fmt.Errorf("-probe needs the serial engine for a deterministic digest stream; use -shards 1")
	}
	if *probePoint != "" && *direct {
		return fmt.Errorf("-probe cannot be combined with -direct: the direct-matching ablation bypasses the event layer probes export")
	}
	if *direct && *shards > 1 {
		return fmt.Errorf("-direct is a serial-engine ablation; use -shards 1")
	}
	if *ingest < 1 {
		return fmt.Errorf("-ingest must be at least 1")
	}
	if *ingest > 1 && *shards <= 1 {
		return fmt.Errorf("-ingest %d needs the sharded engine; use -shards 2 or more", *ingest)
	}
	if *checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be non-negative")
	}
	if *reloadEvery < 0 {
		return fmt.Errorf("-reload-rules must be non-negative")
	}
	if *reloadEvery > 0 && *direct {
		return fmt.Errorf("-reload-rules cannot be combined with -direct: the direct-matching ablation bypasses the rule engine")
	}
	if *checkpointEvery > 0 && *checkpointPath == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint")
	}
	if *direct && (*checkpointPath != "" || *resumePath != "") {
		return fmt.Errorf("-direct cannot be checkpointed or resumed: the direct-matching ablation rereads raw trail contents that checkpoints drop")
	}
	var f *os.File
	if *inPath != "" {
		var err error
		f, err = os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
	}

	opts := []core.EngineOption{}
	if *showEvents {
		opts = append(opts, core.WithEventLog())
	}
	limits, err := parseLimits(*limitsSpec)
	if err != nil {
		return err
	}
	limits.ShedAfter = *shed
	limits.StallTimeout = *stall
	limits.RestartFailedShards = *restartShards
	cfg := core.Config{
		Gen:                 core.GenConfig{MonitorWindow: *window, RTPActivityEvery: *rtpActivityEvery},
		Rules:               rules,
		DirectTrailMatching: *direct,
		Limits:              limits,
		Correlators:         correlators,
		IngestRouters:       *ingest,
	}
	var eng idsEngine
	var sessionCount func() (sessions, trails int)
	if *shards > 1 {
		sharded := core.NewShardedEngine(cfg, *shards, opts...)
		defer sharded.Close()
		sessionCount = sharded.TrailCounts
		eng = sharded
	} else {
		serial := core.NewEngine(cfg, opts...)
		sessionCount = func() (int, int) { return serial.Trails().Sessions(), serial.Trails().Trails() }
		eng = serial
	}
	var probe *probeExporter
	if *probePoint != "" {
		probe, err = newProbeExporter(*probePoint, *exportSpec, limits, eng)
		if err != nil {
			return err
		}
	}
	var resumeSkip uint64
	if *resumePath != "" {
		data, err := os.ReadFile(*resumePath)
		if err != nil {
			return err
		}
		info, err := core.PeekSnapshotInfo(data)
		if err != nil {
			return fmt.Errorf("resume %s: %w", *resumePath, err)
		}
		if err := eng.RestoreSnapshot(data); err != nil {
			return fmt.Errorf("resume %s: %w", *resumePath, err)
		}
		resumeSkip = info.Frames
		fmt.Fprintf(out, "resumed from %s: skipping %d frames the checkpoint covers\n", *resumePath, resumeSkip)
	}
	// reloadRules hot-swaps the ruleset: the -rules file is re-read and
	// re-parsed through the DSL, then swapped in at a frame boundary
	// (unchanged rules keep their in-flight partial matches; removed or
	// edited rules drop theirs and raise a rule-reload alert). A read or
	// parse failure keeps the active ruleset: a bad edit must never take
	// the detector down.
	reloadRules := func() {
		var rules []core.Rule
		source := "built-in ruleset"
		if *rulesPath != "" {
			source = *rulesPath
			text, err := os.ReadFile(*rulesPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scidive: rule reload skipped: %v (keeping the active ruleset)\n", err)
				return
			}
			rules, err = core.ParseRules(string(text))
			if err != nil {
				fmt.Fprintf(os.Stderr, "scidive: rule reload skipped: %v (keeping the active ruleset)\n", err)
				return
			}
		}
		dropped, err := eng.ReloadRules(rules)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scidive: rule reload failed: %v\n", err)
			return
		}
		fmt.Fprintf(out, "rules reloaded from %s: %d in-flight partial matches dropped\n", source, dropped)
	}
	// SIGHUP triggers a live reload at any point in the replay; ReloadRules
	// is safe against concurrent frame delivery, so the watcher calls it
	// directly. It is stopped before results print so the reload notice
	// cannot interleave with the alert listing. The -direct ablation
	// bypasses the rule engine and takes no watcher.
	stopHUP := func() {}
	if !*direct {
		sighup := make(chan os.Signal, 1)
		signal.Notify(sighup, syscall.SIGHUP)
		hupDone := make(chan struct{})
		go func() {
			defer close(hupDone)
			for range sighup {
				reloadRules()
			}
		}()
		var hupOnce sync.Once
		stopHUP = func() {
			hupOnce.Do(func() {
				signal.Stop(sighup)
				close(sighup)
				<-hupDone
			})
		}
		defer stopHUP()
	}
	writeCkpt := func() error {
		snap, err := eng.Snapshot()
		if err != nil {
			return err
		}
		return core.WriteCheckpoint(*checkpointPath, snap)
	}
	// deliver skips the frames a resumed checkpoint already covers and
	// cuts periodic checkpoints at exact frame boundaries.
	var deliverErr error
	skip, processed := resumeSkip, uint64(0)
	deliver := func(at time.Duration, frame []byte) {
		if deliverErr != nil {
			return
		}
		if skip > 0 {
			skip--
			return
		}
		eng.HandleFrame(at, frame)
		processed++
		if *checkpointPath != "" && *checkpointEvery > 0 && processed%uint64(*checkpointEvery) == 0 {
			deliverErr = writeCkpt()
		}
		if *reloadEvery > 0 && processed%uint64(*reloadEvery) == 0 {
			reloadRules()
		}
	}
	if *scenarioName != "" {
		outcome, err := experiments.RunScenario(*scenarioName, *seed, deliver)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "scenario %s: %s\n", *scenarioName, outcome.Impact)
	} else if *checkpointPath != "" || *resumePath != "" || *reloadEvery > 0 {
		rd := capture.NewReader(f)
		for {
			rec, err := rd.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			deliver(rec.Time, rec.Frame)
		}
	} else if err := eng.ReplayCapture(capture.NewReader(f)); err != nil {
		return err
	}
	stopHUP()
	if deliverErr != nil {
		return deliverErr
	}
	if *checkpointPath != "" {
		if err := writeCkpt(); err != nil {
			return err
		}
	}
	if probe != nil {
		if err := probe.WriteFile(*digestOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "digest stream written to %s (%d digest frames)\n", *digestOut, len(probe.frames))
	}

	if *showEvents {
		fmt.Fprintln(out, "=== events ===")
		for _, ev := range eng.Events() {
			fmt.Fprintln(out, ev)
		}
	}
	alerts := eng.Alerts()
	if *jsonOut {
		if err := writeAlertsJSON(out, alerts); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(out, "=== alerts ===")
		if len(alerts) == 0 {
			fmt.Fprintln(out, "(none)")
		}
		for _, a := range alerts {
			fmt.Fprintln(out, a)
		}
	}
	st := eng.Stats()
	sessions, trails := sessionCount()
	fmt.Fprintf(out, "=== stats ===\nframes=%d footprints=%d events=%d alerts=%d sessions=%d trails=%d\n",
		st.Frames, st.Footprints, st.Events, st.Alerts, sessions, trails)
	// Classification ledger: how the distiller filed what it saw. On the
	// sharded engine these cover the frames shipped to shards (the router
	// pre-drops unclaimed traffic, so ignored stays 0 there); mismatched
	// counts content-confirmed reclassifications — nonzero means something
	// on the wire contradicted its port's claimed protocol.
	ds := eng.DistillerStats()
	fmt.Fprintf(out, "classified: sip=%d rtp=%d rtcp=%d acct=%d raw=%d ignored=%d mismatched=%d\n",
		ds.SIP, ds.RTP, ds.RTCP, ds.Acct, ds.Raw, ds.Ignored, ds.Mismatched)
	// The overload line appears only when degradation actually happened,
	// so unstressed runs keep their historic byte-identical output.
	if overloaded(st) {
		fmt.Fprintf(out, "overload: shed=%d/%db evicted sessions=%d frags=%d ims=%d seqs=%d bindings=%d alerts=%d events=%d shards failed=%d restarted=%d\n",
			st.FramesShed, st.BatchesShed,
			st.SessionsCapEvicted, st.FragGroupsEvicted, st.IMHistoriesEvicted,
			st.SeqTrackersEvicted, st.BindingsEvicted, st.AlertsEvicted, st.EventsEvicted,
			st.ShardsFailed, st.ShardsRestarted)
	}
	return nil
}

// overloaded reports whether any degradation counter is nonzero.
func overloaded(st core.EngineStats) bool {
	return st.FramesShed != 0 || st.BatchesShed != 0 ||
		st.SessionsCapEvicted != 0 || st.FragGroupsEvicted != 0 ||
		st.IMHistoriesEvicted != 0 || st.SeqTrackersEvicted != 0 ||
		st.BindingsEvicted != 0 || st.AlertsEvicted != 0 || st.EventsEvicted != 0 ||
		st.ShardsFailed != 0 || st.ShardsRestarted != 0 || st.FramesAfterClose != 0
}

// parseCorrelators parses the -correlators flag: a comma-separated subset
// of the registered correlator names. The selection keeps registry order
// (which fixes event order and port-claim priority) regardless of the
// order names were given in. "" selects everything; "help" lists the
// registry and returns nil correlators.
func parseCorrelators(spec string, out io.Writer) ([]core.Registration, error) {
	if spec == "" {
		return nil, nil
	}
	registry := core.DefaultCorrelators()
	if spec == "help" {
		fmt.Fprintln(out, "registered correlators (in dispatch order):")
		for _, reg := range registry {
			fmt.Fprintf(out, "  %s\n", reg.Name)
		}
		return nil, nil
	}
	want := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("-correlators: empty name in %q", spec)
		}
		known := false
		for _, reg := range registry {
			if reg.Name == name {
				known = true
				break
			}
		}
		if !known {
			names := make([]string, len(registry))
			for i, reg := range registry {
				names[i] = reg.Name
			}
			return nil, fmt.Errorf("-correlators: unknown correlator %q (registered: %s)", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	var selected []core.Registration
	for _, reg := range registry {
		if want[reg.Name] {
			selected = append(selected, reg)
		}
	}
	return selected, nil
}

// parseLimits parses the -limits flag: comma-separated k=v pairs with
// keys sessions, frags, streams, ims, seqs, bindings, alerts, events.
func parseLimits(spec string) (core.Limits, error) {
	var l core.Limits
	if spec == "" {
		return l, nil
	}
	fields := map[string]*int{
		"sessions": &l.MaxSessions,
		"frags":    &l.MaxFragGroups,
		"streams":  &l.MaxStreams,
		"ims":      &l.MaxIMHistories,
		"seqs":     &l.MaxSeqTrackers,
		"bindings": &l.MaxBindings,
		"alerts":   &l.MaxRetainedAlerts,
		"events":   &l.MaxRetainedEvents,
	}
	for _, pair := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return l, fmt.Errorf("-limits: %q is not key=value", pair)
		}
		dst, known := fields[k]
		if !known {
			return l, fmt.Errorf("-limits: unknown cap %q (want sessions, frags, streams, ims, seqs, bindings, alerts, or events)", k)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return l, fmt.Errorf("-limits: %s=%q is not a non-negative integer", k, v)
		}
		*dst = n
	}
	return l, nil
}

// writeAlertsJSON emits alerts as JSON lines.
func writeAlertsJSON(out io.Writer, alerts []core.Alert) error {
	encoder := json.NewEncoder(out)
	for _, a := range alerts {
		if err := encoder.Encode(alertJSON{
			AtSeconds: a.At.Seconds(),
			Rule:      a.Rule,
			Severity:  a.Severity.String(),
			Session:   a.Session,
			Detail:    a.Detail,
			Count:     a.Count,
		}); err != nil {
			return err
		}
	}
	return nil
}

// alertJSON is the machine-readable alert export shape.
type alertJSON struct {
	AtSeconds float64 `json:"at_seconds"`
	Rule      string  `json:"rule"`
	Severity  string  `json:"severity"`
	Session   string  `json:"session"`
	Detail    string  `json:"detail"`
	Count     int     `json:"count"`
}
